"""A standalone instruction-cache model (the lineage of branch alignment).

Basic-block reordering grew out of instruction-cache optimisation
(McFarling; Hwu & Chang's IMPACT-I; Pettis & Hansen) before this paper
turned it on branch costs; the paper notes that although it optimises for
branches, "instruction cache performance may also be improved".  This
configurable set-associative I-cache consumes the executor's block-fetch
stream, letting experiments quantify exactly that side effect: chains
concentrate the hot path, shrinking its cache footprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class ICacheConfig:
    """Geometry of the modelled instruction cache."""

    size_bytes: int = 8 * 1024
    line_bytes: int = 32
    assoc: int = 1

    def __post_init__(self) -> None:
        if self.line_bytes < 4 or self.line_bytes & (self.line_bytes - 1):
            raise ValueError(f"bad line size {self.line_bytes}")
        if self.size_bytes % (self.line_bytes * self.assoc):
            raise ValueError("cache size must be a multiple of line*assoc")

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.assoc)


class InstructionCache:
    """Set-associative I-cache with LRU replacement.

    Attach it to the executor via ``block_listeners``; every executed
    block's instruction range is fetched line by line.
    """

    def __init__(self, config: ICacheConfig = ICacheConfig()):
        self.config = config
        self._line_shift = config.line_bytes.bit_length() - 1
        self._sets: List[Dict[int, int]] = [dict() for _ in range(config.sets)]
        self._clock = 0
        self.accesses = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def on_block(self, start: int, size: int) -> None:
        """Fetch one executed block's instruction range line by line."""
        first = start >> self._line_shift
        last = (start + size * 4 - 1) >> self._line_shift
        for line in range(first, last + 1):
            self._touch(line)

    def _touch(self, line: int) -> None:
        self.accesses += 1
        self._clock += 1
        bucket = self._sets[line % self.config.sets]
        if line in bucket:
            bucket[line] = self._clock
            return
        self.misses += 1
        if len(bucket) >= self.config.assoc:
            victim = min(bucket, key=bucket.get)  # type: ignore[arg-type]
            del bucket[victim]
        bucket[line] = self._clock

    # ------------------------------------------------------------------
    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        """Empty the cache and zero the counters."""
        self._sets = [dict() for _ in range(self.config.sets)]
        self._clock = 0
        self.accesses = self.misses = 0
