"""A DEC Alpha AXP 21064 front-end timing model (Figure 4's substrate).

The paper describes the 21064 as "a dual issue architecture which uses a
combination of dynamic and static branch prediction.  Each instruction in
the on-chip cache has a single bit indicating the previous branch
direction for that instruction.  When a cache line is flushed, all the
bits are initialized with the bit from each instruction where the sign
displacement should be located.  Thus the performance expected by this
architecture is a cross between a direct mapped PHT table and a BT/FNT
architecture."  It also notes that "misfetch penalties can be squashed if
the pipeline is currently waiting on other stalls ... taken branches are
squashed roughly 30% of the time."

This model implements exactly that:

* dual issue — the no-stall baseline is ``instructions / 2`` cycles;
* an 8 KB direct-mapped instruction cache with 32-byte lines;
* one dynamic history bit per branch, resident in its I-cache line,
  re-initialised to the BT/FNT static prediction whenever the line is
  (re)filled;
* a 4-cycle mispredict penalty and a 1-cycle misfetch penalty, the
  latter squashed 30% of the time (charged as an expected 0.7 cycles);
* a flat I-cache miss penalty, giving block reordering the same weak
  cache-locality benefit the hardware runs showed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from ..isa.encoder import LinkedProgram
from . import trace as tr
from .executor import execute
from .predictors.ras import ReturnStack
from .predictors.static_ import conditional_taken_targets


@dataclass(frozen=True)
class AlphaConfig:
    """Tunable constants of the 21064 front-end model."""

    issue_width: int = 2
    icache_bytes: int = 8 * 1024
    line_bytes: int = 32
    # "The combined branch mispredict penalty for the Digital Alpha AXP
    # 21064 processor is ten instructions" — five cycles at dual issue.
    mispredict_cycles: float = 5.0
    misfetch_cycles: float = 1.0
    misfetch_squash_rate: float = 0.30
    icache_miss_cycles: float = 5.0
    ras_depth: int = 32

    @property
    def lines(self) -> int:
        return self.icache_bytes // self.line_bytes

    @property
    def effective_misfetch(self) -> float:
        return self.misfetch_cycles * (1.0 - self.misfetch_squash_rate)


class AlphaSim:
    """Event/block listener accumulating 21064 front-end cycles."""

    name = "alpha21064"

    def __init__(self, linked: LinkedProgram, config: AlphaConfig = AlphaConfig()):
        self.config = config
        self._taken_targets = conditional_taken_targets(linked)
        self._line_shift = config.line_bytes.bit_length() - 1
        self._num_lines = config.lines
        self._tags: Dict[int, int] = {}
        self._bits: Dict[int, bool] = {}
        self._line_sites: Dict[int, Set[int]] = {}
        self.ras = ReturnStack(config.ras_depth)
        self.instructions = 0
        self.icache_misses = 0
        self.misfetch_cycles = 0.0
        self.mispredict_cycles = 0.0
        self.cond_executed = 0
        self.cond_correct = 0

    # ------------------------------------------------------------------
    def on_block(self, start: int, size: int) -> None:
        """Fetch the block's instructions through the I-cache."""
        self.instructions += size
        first = start >> self._line_shift
        last = (start + size * 4 - 1) >> self._line_shift
        tags = self._tags
        for line in range(first, last + 1):
            index = line % self._num_lines
            if tags.get(index) != line:
                tags[index] = line
                self.icache_misses += 1
                # Refill wipes the dynamic history bits of the old line.
                for site in self._line_sites.pop(index, ()):
                    self._bits.pop(site, None)

    def on_event(self, event) -> None:
        """Charge branch penalties for one control-flow event."""
        """Charge branch penalties for one control-flow event."""
        kind, site, target, taken = event
        cfg = self.config
        if kind == tr.COND:
            self.cond_executed += 1
            bit = self._bits.get(site)
            if bit is None:
                # First execution since the line was filled: the bit holds
                # the BT/FNT static prediction from the sign displacement.
                bit = self._taken_targets[site] < site
                index = (site >> self._line_shift) % self._num_lines
                self._line_sites.setdefault(index, set()).add(site)
            if bit == taken:
                self.cond_correct += 1
                if taken:
                    self.misfetch_cycles += cfg.effective_misfetch
            else:
                self.mispredict_cycles += cfg.mispredict_cycles
            self._bits[site] = taken
        elif kind == tr.UNCOND:
            self.misfetch_cycles += cfg.effective_misfetch
        elif kind == tr.CALL:
            self.misfetch_cycles += cfg.effective_misfetch
            self.ras.push(site + 4)
        elif kind == tr.ICALL:
            self.mispredict_cycles += cfg.mispredict_cycles
            self.ras.push(site + 4)
        elif kind == tr.INDIRECT:
            self.mispredict_cycles += cfg.mispredict_cycles
        else:  # RET
            if not self.ras.pop_predict(target):
                self.mispredict_cycles += cfg.mispredict_cycles

    # ------------------------------------------------------------------
    @property
    def cycles(self) -> float:
        """Total modelled execution time in cycles."""
        return (
            self.instructions / self.config.issue_width
            + self.misfetch_cycles
            + self.mispredict_cycles
            + self.icache_misses * self.config.icache_miss_cycles
        )


def alpha_execution_cycles(
    linked: LinkedProgram,
    seed: int = 0,
    config: AlphaConfig = AlphaConfig(),
    max_events: Optional[int] = None,
) -> AlphaSim:
    """Run a linked binary through the 21064 model; returns the simulator."""
    sim = AlphaSim(linked, config)
    execute(
        linked,
        listeners=[sim],
        block_listeners=[sim],
        seed=seed,
        max_events=max_events,
    )
    return sim
