"""Branch execution penalty (BEP) and relative CPI (section 6).

    "We define the branch execution penalty (BEP) to be the execution
    penalty associated with misfetched and mispredicted branches. ...
    In order to evaluate the performance of the different alignments and
    architectures, we add the BEP to the number of instructions executed
    in the aligned program and divide by the number of instructions
    executed in the original program."

This module wires the executor to a set of architecture simulators and
reports per-architecture relative CPI.
"""

from __future__ import annotations

import copy
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..isa.encoder import LinkedProgram
from ..profiling.condmix import CondMixListener
from ..profiling.edge_profile import EdgeProfile
from .decisions import DecisionTrace, capture_decisions
from .executor import ExecutionResult, execute
from .predictors import (
    BTBSim,
    BTFNTSim,
    CorrelationPHT,
    DirectMappedPHT,
    FallthroughSim,
    LikelySim,
)

#: Architecture names in the order Tables 3 and 4 report them.
STATIC_ARCHS = ("fallthrough", "btfnt", "likely")
DYNAMIC_ARCHS = ("pht-direct", "pht-correlation", "btb-64x2", "btb-256x4")
ALL_ARCHS = STATIC_ARCHS + DYNAMIC_ARCHS


@dataclass
class ArchResult:
    """Per-architecture outcome of one simulation."""

    name: str
    misfetches: int
    mispredicts: int
    bep: int
    cond_executed: int
    cond_correct: int

    @property
    def cond_accuracy(self) -> float:
        if not self.cond_executed:
            return 1.0
        return self.cond_correct / self.cond_executed


@dataclass
class SimulationReport:
    """All architecture results for one (program, layout) execution."""

    instructions: int
    events: int
    cond_taken: int
    cond_executed: int
    arch: Dict[str, ArchResult] = field(default_factory=dict)

    def relative_cpi(self, arch_name: str, original_instructions: int) -> float:
        """(aligned instructions + BEP) / original instructions."""
        result = self.arch[arch_name]
        if original_instructions <= 0:
            raise ValueError("original instruction count must be positive")
        return (self.instructions + result.bep) / original_instructions

    @property
    def fallthrough_rate(self) -> float:
        """Fraction of executed conditional branches that fell through.

        The tournament's second scoring axis (claim 19 compares ext-TSP
        against Greedy on it): a layout that converts taken conditionals
        to fall-throughs raises this toward 1.0.  Programs that execute
        no conditionals score a vacuous 1.0.
        """
        if not self.cond_executed:
            return 1.0
        return (self.cond_executed - self.cond_taken) / self.cond_executed

    @property
    def percent_fallthrough(self) -> float:
        """Fall-through percentage of executed conditional branches."""
        return 100.0 * self.fallthrough_rate


def default_architectures(
    linked: LinkedProgram, profile: EdgeProfile, ras_depth: int = 32
) -> List[object]:
    """The seven architectures of Tables 3 and 4, freshly initialised."""
    return [
        FallthroughSim(ras_depth),
        BTFNTSim(linked, ras_depth),
        LikelySim(linked, profile, ras_depth),
        DirectMappedPHT(ras_depth=ras_depth),
        CorrelationPHT(ras_depth=ras_depth),
        BTBSim(64, 2, ras_depth),
        BTBSim(256, 4, ras_depth),
    ]


def _report_from(
    sims: Sequence[object],
    instructions: int,
    events: int,
    cond_taken: int,
    cond_executed: int,
) -> SimulationReport:
    report = SimulationReport(
        instructions=instructions,
        events=events,
        cond_taken=cond_taken,
        cond_executed=cond_executed,
    )
    for sim in sims:
        counts = sim.counts
        report.arch[sim.name] = ArchResult(
            name=sim.name,
            misfetches=counts.misfetches,
            mispredicts=counts.mispredicts,
            bep=counts.bep,
            cond_executed=counts.cond_executed,
            cond_correct=counts.cond_correct,
        )
    return report


def _simulate_execute(
    linked: LinkedProgram,
    sims: Sequence[object],
    seed: int,
    max_events: Optional[int],
) -> SimulationReport:
    """The legacy engine: one full execution feeding every simulator."""
    mix = CondMixListener()
    result: ExecutionResult = execute(
        linked, listeners=list(sims) + [mix], seed=seed, max_events=max_events
    )
    return _report_from(sims, result.instructions, result.events, mix.taken, mix.executed)


def replay_check_enabled() -> bool:
    """True when ``REPRO_REPLAY_CHECK`` requests differential checking."""
    return os.environ.get("REPRO_REPLAY_CHECK", "") not in ("", "0")


def simulate(
    linked: LinkedProgram,
    profile: EdgeProfile,
    archs: Optional[Sequence[object]] = None,
    seed: int = 0,
    max_events: Optional[int] = None,
    *,
    trace: Optional[DecisionTrace] = None,
    engine: Optional[str] = None,
    replay_check: Optional[bool] = None,
) -> SimulationReport:
    """Evaluate a linked binary on every architecture simulator.

    ``profile`` supplies the likely bits for the LIKELY architecture (and
    is the same profile that drove the alignment, per the paper).

    Engine selection: an explicit ``engine`` ("execute" or "replay")
    wins; otherwise passing a ``trace`` selects the replay engine and
    plain calls keep the legacy single-execution path.  With
    ``engine="replay"`` and no trace, one is captured on the fly — same
    result, none of the reuse.  The legacy path stays addressable as
    ``engine="execute"`` for one release while replay bakes in.

    ``replay_check`` (or the ``REPRO_REPLAY_CHECK=1`` environment
    variable) runs both engines on identical simulator copies and raises
    :class:`~repro.sim.replay.ReplayMismatchError` unless the two
    :class:`SimulationReport`\\ s are bit-identical.

    Duplicate simulator instances in ``archs`` are dropped (by identity):
    feeding the same object twice would double-count every event.
    """
    if archs is not None:
        sims = list(dict.fromkeys(archs))
    else:
        sims = default_architectures(linked, profile)
    if engine is None:
        engine = "replay" if trace is not None else "execute"
    if engine == "execute":
        return _simulate_execute(linked, sims, seed, max_events)
    if engine != "replay":
        raise ValueError(f"unknown simulation engine {engine!r}")

    from .replay import ReplayMismatchError, run_architectures

    if trace is None:
        trace = capture_decisions(linked.program, seed=seed)
    if replay_check is None:
        replay_check = replay_check_enabled()
    shadow = copy.deepcopy(sims) if replay_check else None
    instructions, events, cond_executed, cond_taken = run_architectures(
        linked, trace, sims, max_events=max_events
    )
    report = _report_from(sims, instructions, events, cond_taken, cond_executed)
    if replay_check:
        assert shadow is not None
        legacy = _simulate_execute(linked, shadow, seed, max_events)
        if legacy != report:
            raise ReplayMismatchError(
                "replay diverged from execute:\n"
                f"  replay:  {report}\n  execute: {legacy}"
            )
    return report


def relative_cpi(instructions: int, bep: float, original_instructions: int) -> float:
    """Standalone relative-CPI helper (see :class:`SimulationReport`)."""
    if original_instructions <= 0:
        raise ValueError("original instruction count must be positive")
    return (instructions + bep) / original_instructions


def trace_fallthrough_rate(trace: DecisionTrace, program) -> float:
    """Original-layout fall-through rate straight from a decision trace.

    Every ``T_BRANCH`` template names an intra-procedural edge; a
    conditional fell through in the original layout exactly when it took
    its CFG fall-through edge.  This is the number the replay engine's
    :attr:`SimulationReport.fallthrough_rate` reports for the identity
    layout, computed without replaying — tournaments use it to sanity
    check the shared trace, claim 19 to avoid an extra simulation.
    """
    from ..cfg import TerminatorKind
    from .decisions import T_BRANCH

    executed = taken = 0
    for template, count in zip(trace.templates, trace.counts):
        if template[0] != T_BRANCH or not count:
            continue
        proc = program.procedure(template[1])
        src, dst = template[2], template[3]
        if proc.block(src).kind is not TerminatorKind.COND:
            continue
        executed += count
        fallthrough = proc.fallthrough_edge(src)
        if fallthrough is None or fallthrough.dst != dst:
            taken += count
    if not executed:
        return 1.0
    return (executed - taken) / executed
