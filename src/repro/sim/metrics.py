"""Branch execution penalty (BEP) and relative CPI (section 6).

    "We define the branch execution penalty (BEP) to be the execution
    penalty associated with misfetched and mispredicted branches. ...
    In order to evaluate the performance of the different alignments and
    architectures, we add the BEP to the number of instructions executed
    in the aligned program and divide by the number of instructions
    executed in the original program."

This module wires the executor to a set of architecture simulators and
reports per-architecture relative CPI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..isa.encoder import LinkedProgram
from ..profiling.edge_profile import EdgeProfile
from .executor import ExecutionResult, execute
from .predictors import (
    BTBSim,
    BTFNTSim,
    CorrelationPHT,
    DirectMappedPHT,
    FallthroughSim,
    LikelySim,
)

#: Architecture names in the order Tables 3 and 4 report them.
STATIC_ARCHS = ("fallthrough", "btfnt", "likely")
DYNAMIC_ARCHS = ("pht-direct", "pht-correlation", "btb-64x2", "btb-256x4")
ALL_ARCHS = STATIC_ARCHS + DYNAMIC_ARCHS


@dataclass
class ArchResult:
    """Per-architecture outcome of one simulation."""

    name: str
    misfetches: int
    mispredicts: int
    bep: int
    cond_executed: int
    cond_correct: int

    @property
    def cond_accuracy(self) -> float:
        if not self.cond_executed:
            return 1.0
        return self.cond_correct / self.cond_executed


@dataclass
class SimulationReport:
    """All architecture results for one (program, layout) execution."""

    instructions: int
    events: int
    cond_taken: int
    cond_executed: int
    arch: Dict[str, ArchResult] = field(default_factory=dict)

    def relative_cpi(self, arch_name: str, original_instructions: int) -> float:
        """(aligned instructions + BEP) / original instructions."""
        result = self.arch[arch_name]
        if original_instructions <= 0:
            raise ValueError("original instruction count must be positive")
        return (self.instructions + result.bep) / original_instructions

    @property
    def percent_fallthrough(self) -> float:
        """Fall-through percentage of executed conditional branches."""
        if not self.cond_executed:
            return 100.0
        return 100.0 * (self.cond_executed - self.cond_taken) / self.cond_executed


class _CondMix:
    """Tiny listener counting executed/taken conditionals."""

    def __init__(self) -> None:
        self.executed = 0
        self.taken = 0

    def on_event(self, event) -> None:
        if event[0] == 0:  # trace.COND
            self.executed += 1
            if event[3]:
                self.taken += 1


def default_architectures(
    linked: LinkedProgram, profile: EdgeProfile, ras_depth: int = 32
) -> List[object]:
    """The seven architectures of Tables 3 and 4, freshly initialised."""
    return [
        FallthroughSim(ras_depth),
        BTFNTSim(linked, ras_depth),
        LikelySim(linked, profile, ras_depth),
        DirectMappedPHT(ras_depth=ras_depth),
        CorrelationPHT(ras_depth=ras_depth),
        BTBSim(64, 2, ras_depth),
        BTBSim(256, 4, ras_depth),
    ]


def simulate(
    linked: LinkedProgram,
    profile: EdgeProfile,
    archs: Optional[Sequence[object]] = None,
    seed: int = 0,
    max_events: Optional[int] = None,
) -> SimulationReport:
    """Execute a linked binary once, feeding every architecture simulator.

    ``profile`` supplies the likely bits for the LIKELY architecture (and
    is the same profile that drove the alignment, per the paper).
    """
    sims = list(archs) if archs is not None else default_architectures(linked, profile)
    mix = _CondMix()
    result: ExecutionResult = execute(
        linked, listeners=list(sims) + [mix], seed=seed, max_events=max_events
    )
    report = SimulationReport(
        instructions=result.instructions,
        events=result.events,
        cond_taken=mix.taken,
        cond_executed=mix.executed,
    )
    for sim in sims:
        counts = sim.counts
        report.arch[sim.name] = ArchResult(
            name=sim.name,
            misfetches=counts.misfetches,
            mispredicts=counts.mispredicts,
            bep=counts.bep,
            cond_executed=counts.cond_executed,
            cond_correct=counts.cond_correct,
        )
    return report


def relative_cpi(instructions: int, bep: float, original_instructions: int) -> float:
    """Standalone relative-CPI helper (see :class:`SimulationReport`)."""
    if original_instructions <= 0:
        raise ValueError("original instruction count must be positive")
    return (instructions + bep) / original_instructions
