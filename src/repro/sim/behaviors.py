"""Deterministic branch behaviours that drive program execution.

A behaviour decides, each time its block executes, which CFG successor the
terminating branch takes.  Behaviours are expressed in terms of the
*original* CFG edge roles — a conditional behaviour returns ``True`` for
the original taken edge and ``False`` for the original fall-through edge —
so the identical behaviour stream replays the identical dynamic block
sequence no matter how the blocks are laid out.  That is how this
reproduction compares an original and an aligned binary "on the same
input", mirroring the paper's use of a single trace per program.

All behaviours are seeded through :meth:`reset` before a run;
:meth:`repro.cfg.Program.reset_behaviors` derives a stable per-site seed,
so repeated runs are bit-identical.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, Tuple, Union


class CondBehavior:
    """Base class for conditional-branch behaviours."""

    def reset(self, seed: int) -> None:
        """Restore the behaviour to its initial state for a new run."""
        raise NotImplementedError

    def choose(self) -> bool:
        """Return True to follow the original taken edge, else False."""
        raise NotImplementedError


class AlwaysTaken(CondBehavior):
    """Follows the original taken edge on every execution."""

    def reset(self, seed: int) -> None:
        pass

    def choose(self) -> bool:
        return True


class NeverTaken(CondBehavior):
    """Follows the original fall-through edge on every execution."""

    def reset(self, seed: int) -> None:
        pass

    def choose(self) -> bool:
        return False


class Inverted(CondBehavior):
    """Negates another behaviour's choices.

    Used by transformations that duplicate a block but wire its continue
    path through the *fall-through* edge instead of the taken edge (loop
    unrolling): the inner behaviour still decides continue-vs-exit, the
    wrapper maps that decision onto the copy's edge roles.  Resetting an
    ``Inverted`` view is a no-op — the owner of the shared inner behaviour
    resets it exactly once, keeping the combined decision stream intact.
    """

    def __init__(self, inner: "CondBehavior"):
        self.inner = inner

    def reset(self, seed: int) -> None:
        pass

    def choose(self) -> bool:
        return not self.inner.choose()


class Bernoulli(CondBehavior):
    """Takes the original taken edge with independent probability ``p``.

    This models data-dependent branches; a direct-mapped PHT predicts such
    a branch with accuracy ``max(p, 1-p)`` in the limit, and correlation
    offers no extra help — matching the paper's integer-code behaviour.
    """

    def __init__(self, p: float):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {p}")
        self.p = p
        self._rng = random.Random(0)

    def reset(self, seed: int) -> None:
        self._rng = random.Random(seed)

    def choose(self) -> bool:
        return self._rng.random() < self.p


class Pattern(CondBehavior):
    """Cycles deterministically through a T/N pattern string.

    Pattern branches are what two-level correlating predictors exploit:
    a global history register that has seen the prefix of the pattern
    predicts the next symbol perfectly, while a per-site two-bit counter
    cannot (e.g. the pattern ``"TTN"`` defeats a saturating counter one
    time in three).
    """

    def __init__(self, pattern: str):
        if not pattern or any(ch not in "TN" for ch in pattern):
            raise ValueError(f"pattern must be a non-empty T/N string, got {pattern!r}")
        self.pattern = pattern
        self._pos = 0

    def reset(self, seed: int) -> None:
        self._pos = 0

    def choose(self) -> bool:
        taken = self.pattern[self._pos] == "T"
        self._pos = (self._pos + 1) % len(self.pattern)
        return taken


TripSpec = Union[int, Tuple[int, int]]


class Loop(CondBehavior):
    """A loop back-edge: continues ``trips - 1`` times, then exits once.

    ``trips`` is either a fixed iteration count or an inclusive ``(lo, hi)``
    range from which a fresh count is drawn (seeded) at each loop
    activation.  ``continue_taken`` says whether the loop-continue
    direction is the original taken edge (the common shape: a backward
    conditional branch at the loop bottom) or the fall-through edge (a
    loop-top exit test).
    """

    def __init__(self, trips: TripSpec, continue_taken: bool = True):
        if isinstance(trips, int):
            if trips < 1:
                raise ValueError(f"trip count must be >= 1, got {trips}")
            self._lo = self._hi = trips
        else:
            lo, hi = trips
            if not 1 <= lo <= hi:
                raise ValueError(f"bad trip range ({lo}, {hi})")
            self._lo, self._hi = lo, hi
        self.continue_taken = continue_taken
        self._rng = random.Random(0)
        self._remaining = 0

    def _draw(self) -> int:
        if self._lo == self._hi:
            return self._lo
        return self._rng.randint(self._lo, self._hi)

    def reset(self, seed: int) -> None:
        self._rng = random.Random(seed)
        self._remaining = self._draw()

    def choose(self) -> bool:
        self._remaining -= 1
        if self._remaining <= 0:
            self._remaining = self._draw()
            return not self.continue_taken
        return self.continue_taken


class IndirectChoice:
    """Chooses among the targets of an indirect jump.

    Returns an index into the block's indirect out-edge list (declaration
    order).  ``weights`` bias the choice; a ``hot`` index can make one
    target dominate, modelling switch statements with a common case.
    """

    def __init__(self, n_targets: int, weights: Optional[Sequence[float]] = None):
        if n_targets < 1:
            raise ValueError("indirect jump needs at least one target")
        if weights is not None and len(weights) != n_targets:
            raise ValueError("weights length must match target count")
        self.n_targets = n_targets
        self._cum = _cumulative(weights if weights is not None else [1.0] * n_targets)
        self._rng = random.Random(0)

    def reset(self, seed: int) -> None:
        self._rng = random.Random(seed)

    def choose(self) -> int:
        return _pick(self._cum, self._rng.random())


class CalleeChoice:
    """Chooses the callee of an indirect call (virtual dispatch)."""

    def __init__(self, callees: Sequence[str], weights: Optional[Sequence[float]] = None):
        if not callees:
            raise ValueError("indirect call needs at least one callee")
        if weights is not None and len(weights) != len(callees):
            raise ValueError("weights length must match callee count")
        self.callees = list(callees)
        self._cum = _cumulative(weights if weights is not None else [1.0] * len(callees))
        self._rng = random.Random(0)

    def reset(self, seed: int) -> None:
        self._rng = random.Random(seed)

    def choose(self) -> str:
        return self.callees[_pick(self._cum, self._rng.random())]


def _cumulative(weights: Sequence[float]) -> Tuple[float, ...]:
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    acc = 0.0
    out = []
    for w in weights:
        if w < 0:
            raise ValueError("weights must be non-negative")
        acc += w / total
        out.append(acc)
    out[-1] = 1.0
    return tuple(out)


def _pick(cum: Tuple[float, ...], u: float) -> int:
    for idx, edge in enumerate(cum):
        if u < edge:
            return idx
    return len(cum) - 1
