"""Layout-independent decision traces (the trace-once half of replay).

The paper's ATOM methodology traces each binary **once** and evaluates
every alignment/architecture combination against that single trace.  The
branch *decision* stream — which CFG successor every block picked, which
callee every indirect call resolved to — is a property of the workload
and seed alone; alignment only changes addresses and branch senses.

This module captures that stream without ever linking a binary.  One
walk of the :class:`~repro.cfg.Program` (consuming behaviours in exactly
the order :func:`repro.sim.executor.execute` would) produces a
:class:`DecisionTrace`: a small table of *step templates* (one per
distinct control transfer) plus a packed, chunked stream of template
ids.  Loops compress extremely well under this encoding — a million
iterations of a two-block loop are two templates and a million 8-byte
ids, streamed in bounded-memory chunks.

Traces persist through the crash-safe artifact store
(:mod:`repro.runner.store`) under a config fingerprint covering the
workload identity *and* the trace/ISA schema versions, with an internal
SHA-256 digest on top of the store's own manifest checksum.  Any cache
miss, staleness or corruption is handled by quarantining the entry and
transparently re-capturing — a trace cache can never make a run wrong,
only faster.
"""

from __future__ import annotations

import base64
import hashlib
import json
import sys
from array import array
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Protocol, Sequence, Tuple

if TYPE_CHECKING:
    from ..profiling.edge_profile import EdgeProfile

from ..cfg import BlockId, Program, TerminatorKind
from ..isa.encoder import INSTRUCTION_BYTES
from ..isa.serialize import FORMAT_VERSION as ISA_FORMAT_VERSION
from .executor import ExecutionError
from .predictors.ras import ReturnStack

#: Bump to invalidate every previously cached trace (schema evolution).
TRACE_SCHEMA_VERSION = 1

#: Template ids per stream chunk (64 KiB of packed ids at 8 bytes each).
CHUNK_STEPS = 8192

#: Step-template kinds (slot 0 of every template tuple).
T_BRANCH = 0  #: (T_BRANCH, proc, bid, succ_bid) — any intra-proc transfer
T_CALL = 1    #: (T_CALL, proc, bid, call_idx, callee) — direct or indirect
T_RET = 2     #: (T_RET, proc, bid, caller_proc, caller_bid, resume_idx)
T_FINAL = 3   #: (T_FINAL, proc, bid) — return from the entry procedure

_STREAM_TYPECODE = "q"


class TraceDecodeError(ValueError):
    """A persisted trace payload is stale, corrupt or malformed.

    ``reason`` is machine-checkable: ``stale-schema``, ``stale-fingerprint``,
    ``digest-mismatch`` or ``malformed``.
    """

    def __init__(self, reason: str, detail: str = ""):
        self.reason = reason
        message = f"decision trace unusable ({reason})"
        if detail:
            message += f": {detail}"
        super().__init__(message)


def trace_fingerprint(workload: str, scale: float, seed: int) -> str:
    """Cache fingerprint for one ``(workload, scale, seed)`` trace.

    Besides the workload identity, the fingerprint covers the trace
    schema and the ISA encoding versions: bumping either invalidates
    every cached trace without touching the store on disk (old entries
    simply stop being addressed, and ``repro doctor --store --repair``
    sweeps them out as stale).
    """
    blob = json.dumps(
        {
            "workload": workload,
            "scale": scale,
            "seed": seed,
            "trace_schema": TRACE_SCHEMA_VERSION,
            "isa_format": ISA_FORMAT_VERSION,
            "instruction_bytes": INSTRUCTION_BYTES,
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def trace_key(workload: str, fingerprint: str) -> str:
    """Artifact-store key for a cached decision trace."""
    return f"trace/{workload}@{fingerprint}"


def is_trace_key(key: str) -> bool:
    """True if ``key`` names a cached decision trace."""
    return key.startswith("trace/")


class DecisionTrace:
    """A captured, layout-independent decision stream.

    ``templates[i]`` describes one distinct control transfer (see the
    ``T_*`` tuples above); ``counts[i]`` is its execution count; the
    chunked ``_chunks`` arrays hold the step stream as template ids in
    execution order.  Everything a replay needs that does not depend on
    the layout — block visit counts, the reconstructed edge profile,
    return-stack statistics — is derived (and cached) here.
    """

    def __init__(
        self,
        templates: List[Tuple],
        counts: List[int],
        chunks: List[array],
        steps: int,
        meta: Optional[Dict[str, object]] = None,
        fingerprint: Optional[str] = None,
    ):
        self.templates = templates
        self.counts = counts
        self._chunks = chunks
        self.steps = steps
        self.meta = dict(meta or {})
        self.fingerprint = fingerprint
        self._visit_counts: Optional[Dict[Tuple[str, BlockId], int]] = None
        self._ras_cache: Dict[int, Tuple[int, int, int]] = {}

    # -- stream access -------------------------------------------------
    def iter_chunks(self) -> Iterator[array]:
        """Yield the packed template-id stream chunk by chunk."""
        return iter(self._chunks)

    def iter_steps(self) -> Iterator[int]:
        """Yield every template id in execution order."""
        for chunk in self._chunks:
            yield from chunk

    # -- layout-independent aggregates ---------------------------------
    def entered_block(self, template: Tuple, program: Program) -> Optional[Tuple[str, BlockId]]:
        """The block a step of this template enters fresh (None for returns)."""
        kind = template[0]
        if kind == T_BRANCH:
            return (template[1], template[3])
        if kind == T_CALL:
            callee = template[4]
            return (callee, program.procedure(callee).entry)
        return None

    def visit_counts(self, program: Program) -> Dict[Tuple[str, BlockId], int]:
        """Execution count per block, including the program entry block."""
        if self._visit_counts is None:
            visits: Dict[Tuple[str, BlockId], int] = {}
            entry = (program.entry, program.procedure(program.entry).entry)
            visits[entry] = 1
            for template, count in zip(self.templates, self.counts):
                key = self.entered_block(template, program)
                if key is not None:
                    visits[key] = visits.get(key, 0) + count
            self._visit_counts = visits
        return self._visit_counts

    def edge_profile(self, program: Program) -> EdgeProfile:
        """Reconstruct the exact edge profile a profiled run would record.

        The executor's ``profile_hook`` fires once per intra-procedural
        transfer — precisely the ``T_BRANCH`` steps — so the reconstructed
        profile equals ``profile_program``'s output bit for bit.
        """
        from ..profiling.edge_profile import EdgeProfile

        profile = EdgeProfile()
        for template, count in zip(self.templates, self.counts):
            if template[0] == T_BRANCH and count:
                profile.set_weight(template[1], template[2], template[3], count)
        return profile

    def _call_site_ids(self) -> Dict[Tuple[str, BlockId, int], int]:
        ids: Dict[Tuple[str, BlockId, int], int] = {}
        for template in self.templates:
            if template[0] == T_CALL:
                site = (template[1], template[2], template[3])
                ids.setdefault(site, len(ids))
        return ids

    def ras_stats(self, depth: int) -> Tuple[int, int, int]:
        """(pushes, pops, correct) of a ``depth``-entry return stack.

        Return-stack behaviour is layout-invariant: pushed values are
        call-site return addresses and pop targets are those same
        addresses, so prediction outcomes depend only on call-site
        *identity* — which this replays with small site ids (+1 so the
        final return's sentinel target 0 never matches a pushed value,
        exactly as address 0 never equals ``site + 4``).
        """
        if depth not in self._ras_cache:
            site_ids = self._call_site_ids()
            actions: List[Tuple[bool, int]] = []  # (is_push, value)
            for template in self.templates:
                kind = template[0]
                if kind == T_CALL:
                    actions.append((True, site_ids[(template[1], template[2], template[3])] + 1))
                elif kind == T_RET:
                    actions.append((False, site_ids[(template[3], template[4], template[5] - 1)] + 1))
                elif kind == T_FINAL:
                    actions.append((False, 0))
                else:
                    actions.append((True, -1))  # branch: no RAS action
            ras = ReturnStack(depth)
            branch_k = T_BRANCH
            kinds = [t[0] for t in self.templates]
            push, pop = ras.push, ras.pop_predict
            for chunk in self._chunks:
                for tid in chunk:
                    if kinds[tid] == branch_k:
                        continue
                    is_push, value = actions[tid]
                    if is_push:
                        push(value)
                    else:
                        pop(value)
            self._ras_cache[depth] = (ras.pushes, ras.pops, ras.correct)
        return self._ras_cache[depth]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DecisionTrace(steps={self.steps}, templates={len(self.templates)}, "
            f"fingerprint={self.fingerprint!r})"
        )


def capture_decisions(
    program: Program,
    seed: int = 0,
    reset: bool = True,
    workload: Optional[str] = None,
    scale: Optional[float] = None,
) -> DecisionTrace:
    """Capture the decision stream of one ``(program, seed)`` run.

    Walks the CFG consuming block behaviours in exactly the order
    :func:`repro.sim.executor.execute` does, so a trace captured here and
    an execution with the same seed make identical decisions.  No layout
    is involved: the walk sees only blocks, edges and callees.
    """
    if reset:
        program.reset_behaviors(seed)

    # Pre-resolve per-block walk records, validating like _compile_nodes.
    walk: Dict[str, Dict[BlockId, Tuple]] = {}
    entries: Dict[str, BlockId] = {}
    for proc in program:
        entries[proc.name] = proc.entry
        records: Dict[BlockId, Tuple] = {}
        for block in proc:
            ft = proc.fallthrough_edge(block.bid)
            taken = proc.taken_edge(block.bid)
            indirect_dsts: List[BlockId] = []
            if block.kind is TerminatorKind.INDIRECT:
                indirect_dsts = [e.dst for e in proc.out_edges(block.bid)]
                if block.behavior is None and len(indirect_dsts) > 1:
                    raise ExecutionError(
                        f"{proc.name}: indirect block {block.bid} with multiple "
                        f"targets needs a behaviour"
                    )
            if block.kind is TerminatorKind.COND and block.behavior is None:
                raise ExecutionError(
                    f"{proc.name}: conditional block {block.bid} needs a behaviour"
                )
            records[block.bid] = (
                block.kind,
                block.behavior,
                [(c.callee, c.chooser) for c in block.calls],
                ft.dst if ft is not None else None,
                taken.dst if taken is not None else None,
                indirect_dsts,
            )
        walk[proc.name] = records

    templates: List[Tuple] = []
    counts: List[int] = []
    template_ids: Dict[Tuple, int] = {}
    chunks: List[array] = []
    current = array(_STREAM_TYPECODE)
    steps = 0

    def record(template: Tuple) -> None:
        nonlocal current, steps
        tid = template_ids.get(template)
        if tid is None:
            tid = len(templates)
            template_ids[template] = tid
            templates.append(template)
            counts.append(0)
        counts[tid] += 1
        current.append(tid)
        steps += 1
        if len(current) >= CHUNK_STEPS:
            chunks.append(current)
            current = array(_STREAM_TYPECODE)

    cond_kind = TerminatorKind.COND
    ft_kind = TerminatorKind.FALLTHROUGH
    uncond_kind = TerminatorKind.UNCOND
    indirect_kind = TerminatorKind.INDIRECT

    stack: List[Tuple[str, BlockId, int]] = []
    proc_name = program.entry
    records = walk[proc_name]
    bid = entries[proc_name]
    call_idx = 0

    while True:
        kind, behavior, calls, ft_dst, taken_dst, indirect_dsts = records[bid]

        if call_idx < len(calls):
            callee, chooser = calls[call_idx]
            if chooser is not None:
                callee = chooser.choose()
            record((T_CALL, proc_name, bid, call_idx, callee))
            stack.append((proc_name, bid, call_idx + 1))
            proc_name = callee
            records = walk[proc_name]
            bid = entries[proc_name]
            call_idx = 0
            continue

        if kind is cond_kind:
            succ = taken_dst if behavior.choose() else ft_dst
        elif kind is ft_kind:
            succ = ft_dst
        elif kind is uncond_kind:
            succ = taken_dst
        elif kind is indirect_kind:
            if behavior is not None:
                succ = indirect_dsts[behavior.choose()]
            else:
                succ = indirect_dsts[0]
        else:  # RETURN
            if stack:
                ret_proc, ret_bid, ret_idx = stack.pop()
                record((T_RET, proc_name, bid, ret_proc, ret_bid, ret_idx))
                proc_name = ret_proc
                records = walk[proc_name]
                bid = ret_bid
                call_idx = ret_idx
                continue
            record((T_FINAL, proc_name, bid))
            break

        record((T_BRANCH, proc_name, bid, succ))
        bid = succ
        call_idx = 0

    if len(current):
        chunks.append(current)

    meta: Dict[str, object] = {"seed": seed}
    fingerprint = None
    if workload is not None:
        meta["workload"] = workload
        meta["scale"] = scale
        if scale is not None:
            fingerprint = trace_fingerprint(workload, scale, seed)
    return DecisionTrace(templates, counts, chunks, steps, meta, fingerprint)


# -- persistence -------------------------------------------------------


def _chunk_bytes(chunk: array) -> bytes:
    if sys.byteorder == "little":
        return chunk.tobytes()
    swapped = array(_STREAM_TYPECODE, chunk)
    swapped.byteswap()
    return swapped.tobytes()


def _digest(templates: List[Tuple], counts: List[int], chunks: Sequence[array]) -> str:
    hasher = hashlib.sha256()
    hasher.update(
        json.dumps([list(t) for t in templates], sort_keys=False).encode("utf-8")
    )
    hasher.update(json.dumps(counts).encode("utf-8"))
    for chunk in chunks:
        hasher.update(_chunk_bytes(chunk))
    return hasher.hexdigest()


def encode_trace(trace: DecisionTrace) -> Dict[str, object]:
    """Encode a trace as a JSON-able payload for the artifact store.

    The payload carries its own SHA-256 digest over templates + stream —
    a second integrity layer under the store's manifest checksum, so a
    payload that decodes as valid JSON but was tampered with (or written
    by a buggy producer) is still rejected as corrupt.
    """
    return {
        "schema": TRACE_SCHEMA_VERSION,
        "fingerprint": trace.fingerprint,
        "meta": trace.meta,
        "steps": trace.steps,
        "templates": [list(t) for t in trace.templates],
        "counts": list(trace.counts),
        "stream": [
            base64.b64encode(_chunk_bytes(chunk)).decode("ascii")
            for chunk in trace.iter_chunks()
        ],
        "digest": _digest(trace.templates, trace.counts, list(trace.iter_chunks())),
    }


def decode_trace(
    payload: object, expect_fingerprint: Optional[str] = None
) -> DecisionTrace:
    """Decode a persisted trace payload, validating schema and digest.

    Raises :class:`TraceDecodeError` with a machine-checkable reason so
    callers can distinguish *stale* (schema/fingerprint drift — silently
    re-capture) from *corrupt* (digest mismatch — quarantine first).
    """
    if not isinstance(payload, dict):
        raise TraceDecodeError("malformed", "payload is not a mapping")
    schema = payload.get("schema")
    if schema != TRACE_SCHEMA_VERSION:
        raise TraceDecodeError(
            "stale-schema", f"schema {schema!r} != {TRACE_SCHEMA_VERSION}"
        )
    if expect_fingerprint is not None and payload.get("fingerprint") != expect_fingerprint:
        raise TraceDecodeError(
            "stale-fingerprint",
            f"{payload.get('fingerprint')!r} != {expect_fingerprint!r}",
        )
    try:
        templates = [tuple(t) for t in payload["templates"]]
        counts = [int(c) for c in payload["counts"]]
        steps = int(payload["steps"])
        chunks = []
        for encoded in payload["stream"]:
            chunk = array(_STREAM_TYPECODE)
            chunk.frombytes(base64.b64decode(encoded))
            if sys.byteorder != "little":
                chunk.byteswap()
            chunks.append(chunk)
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceDecodeError("malformed", str(exc)) from exc
    if payload.get("digest") != _digest(templates, counts, chunks):
        raise TraceDecodeError("digest-mismatch")
    if sum(len(c) for c in chunks) != steps or sum(counts) != steps:
        raise TraceDecodeError("malformed", "step counts disagree with stream")
    n = len(templates)
    if any(tid < 0 or tid >= n for chunk in chunks for tid in chunk):
        raise TraceDecodeError("malformed", "stream references unknown template")
    return DecisionTrace(
        templates,
        counts,
        chunks,
        steps,
        payload.get("meta") or {},
        payload.get("fingerprint"),
    )


def validate_payload(payload: object, key: Optional[str] = None) -> DecisionTrace:
    """Doctor-facing validation: decode and cross-check against ``key``."""
    trace = decode_trace(payload)
    if key is not None:
        fingerprint = trace.fingerprint
        workload = trace.meta.get("workload")
        if fingerprint and workload is not None:
            if key != trace_key(str(workload), str(fingerprint)):
                raise TraceDecodeError(
                    "stale-fingerprint", f"key {key!r} does not match payload identity"
                )
    return trace


class TraceStore(Protocol):
    """The artifact-store surface the trace cache relies on (duck-typed).

    Matches :class:`repro.runner.store.ArtifactStore` structurally so the
    sim layer stays free of a runner dependency.
    """

    def __contains__(self, key: str) -> bool: ...

    def load(self, key: str) -> object: ...

    def put(self, key: str, payload: Dict[str, object]) -> object: ...

    def quarantine(self, key: str) -> object: ...


def load_or_capture(
    store: Optional[TraceStore],
    program: Program,
    workload: str,
    scale: float,
    seed: int = 0,
) -> Tuple[DecisionTrace, bool]:
    """Fetch a cached trace, or capture (and cache) a fresh one.

    Returns ``(trace, cache_hit)``.  ``store`` is duck-typed (the
    :class:`TraceStore` surface of :class:`repro.runner.store.
    ArtifactStore`); pass ``None`` to always capture.

    Every unusable cached entry — stale (``stale-schema``,
    ``stale-fingerprint``) as well as corrupt (``digest-mismatch``,
    ``malformed``) — is quarantined, preserving the payload for
    post-mortem, and transparently re-captured.  Any load failure
    degrades to a capture — the cache is an accelerator, never a
    correctness dependency, so *every* exception on the load path is
    converted into a miss.
    """
    fingerprint = trace_fingerprint(workload, scale, seed)
    key = trace_key(workload, fingerprint)
    if store is not None and key in store:
        try:
            trace = decode_trace(store.load(key), expect_fingerprint=fingerprint)
        except TraceDecodeError:
            # Stale or corrupt, the response is the same: set the entry
            # aside rather than silently overwrite it, then re-capture.
            store.quarantine(key)
        except Exception:
            # The store already quarantines entries failing its own
            # checksum; anything else (I/O, JSON) is treated as a miss.
            try:
                store.quarantine(key)
            except Exception:
                pass
        else:
            return trace, True
    trace = capture_decisions(program, seed=seed, workload=workload, scale=scale)
    if store is not None:
        store.put(key, encode_trace(trace))
    return trace, False
