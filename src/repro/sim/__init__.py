"""Execution, tracing, branch-architecture simulation and metrics."""

from . import behaviors, trace
from .alpha import AlphaConfig, AlphaSim, alpha_execution_cycles
from .decisions import (
    DecisionTrace,
    TraceDecodeError,
    capture_decisions,
    decode_trace,
    encode_trace,
    load_or_capture,
    trace_fingerprint,
    trace_key,
)
from .executor import ExecutionError, ExecutionResult, execute
from .icache import ICacheConfig, InstructionCache
from .metrics import (
    ALL_ARCHS,
    ArchResult,
    DYNAMIC_ARCHS,
    STATIC_ARCHS,
    SimulationReport,
    default_architectures,
    relative_cpi,
    simulate,
    trace_fallthrough_rate,
)
from .replay import ReplayMismatchError, replay
from .trace import BranchEvent, EventRecorder, TraceStats
from .wideissue import WideIssueConfig, WideIssueFrontEnd, wide_issue_cycles

__all__ = [
    "ALL_ARCHS",
    "AlphaConfig",
    "AlphaSim",
    "ArchResult",
    "BranchEvent",
    "DYNAMIC_ARCHS",
    "DecisionTrace",
    "EventRecorder",
    "ExecutionError",
    "ExecutionResult",
    "ICacheConfig",
    "InstructionCache",
    "ReplayMismatchError",
    "STATIC_ARCHS",
    "SimulationReport",
    "TraceDecodeError",
    "TraceStats",
    "WideIssueConfig",
    "WideIssueFrontEnd",
    "alpha_execution_cycles",
    "behaviors",
    "capture_decisions",
    "decode_trace",
    "default_architectures",
    "encode_trace",
    "execute",
    "load_or_capture",
    "relative_cpi",
    "replay",
    "simulate",
    "trace",
    "trace_fallthrough_rate",
    "trace_fingerprint",
    "trace_key",
    "wide_issue_cycles",
]
