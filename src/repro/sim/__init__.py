"""Execution, tracing, branch-architecture simulation and metrics."""

from . import behaviors, trace
from .alpha import AlphaConfig, AlphaSim, alpha_execution_cycles
from .executor import ExecutionError, ExecutionResult, execute
from .icache import ICacheConfig, InstructionCache
from .metrics import (
    ALL_ARCHS,
    ArchResult,
    DYNAMIC_ARCHS,
    STATIC_ARCHS,
    SimulationReport,
    default_architectures,
    relative_cpi,
    simulate,
)
from .trace import BranchEvent, EventRecorder, TraceStats
from .wideissue import WideIssueConfig, WideIssueFrontEnd, wide_issue_cycles

__all__ = [
    "ALL_ARCHS",
    "AlphaConfig",
    "AlphaSim",
    "ArchResult",
    "BranchEvent",
    "DYNAMIC_ARCHS",
    "EventRecorder",
    "ExecutionError",
    "ExecutionResult",
    "ICacheConfig",
    "InstructionCache",
    "STATIC_ARCHS",
    "SimulationReport",
    "TraceStats",
    "WideIssueConfig",
    "WideIssueFrontEnd",
    "alpha_execution_cycles",
    "behaviors",
    "default_architectures",
    "execute",
    "relative_cpi",
    "simulate",
    "trace",
    "wide_issue_cycles",
]
