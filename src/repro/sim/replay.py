"""Replay a decision trace through any layout (the replay-many half).

Where :mod:`repro.sim.decisions` captures the layout-*independent* half
of an execution (which successor every block picked), this module binds
the layout-*dependent* half: given a :class:`LinkedProgram`, each step
template compiles to the exact branch events :func:`repro.sim.executor.
execute` would emit under that layout — addresses from the lowered
blocks, branch senses from the placement's taken target, inserted and
removed unconditional branches from the linker's jump decisions.

So N layouts × 7 architectures costs one capture plus N cheap replays,
instead of N full executions.  Three tiers keep the replay cheap without
ever being unfaithful:

* **aggregate** — the static predictors (fallthrough, BT/FNT, likely)
  are stateless per site, so their penalty counts follow from per-site
  visit/taken totals, layout-resolved once per site, plus the
  layout-invariant return-stack statistics; no event loop at all.
* **fast consumers** — the table predictors (both PHTs, the BTBs) get
  specialised loops over the realised event stream with the predictor
  update rules inlined; same arithmetic, no dispatch.
* **faithful** — any other listener (trace capture, recorders,
  subclassed predictors) receives every event through the same
  ``on_event`` protocol the executor uses, in the same order, with the
  same ``max_events`` cut-off semantics.

The fast tiers are keyed on *exact* type: a subclass (e.g. the
tournament PHT) automatically drops to the faithful tier rather than
silently inheriting the wrong inlined update rule.  Differential
checking (``--replay-check``) and claim 14 assert bit-identity of the
resulting :class:`~repro.sim.metrics.SimulationReport`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Protocol, Sequence, Tuple

from ..isa.encoder import INSTRUCTION_BYTES, LinkedProgram
from ..cfg import BlockId, TerminatorKind
from . import trace as tr
from .decisions import DecisionTrace, T_BRANCH, T_CALL, T_FINAL, T_RET
from .executor import ExecutionResult, _compile_nodes
from .predictors.btb import BTBSim, _Entry as _BTBEntry
from .predictors.pht import CorrelationPHT, DirectMappedPHT
from .predictors.static_ import BTFNTSim, FallthroughSim, LikelySim


class ReplayMismatchError(AssertionError):
    """The replay engine disagreed with the legacy execute engine."""


#: One realised branch event: (kind, site address, target address, taken).
Event = Tuple[int, int, int, bool]


class EventListener(Protocol):
    """Anything consuming the executor's per-event protocol."""

    def on_event(self, event: Event) -> None: ...


class BlockListener(Protocol):
    """Anything consuming the executor's per-block protocol."""

    def on_block(self, start: int, size: int) -> None: ...


class _Step:
    """One step template bound to a layout (hot-loop friendly)."""

    __slots__ = ("events", "enter_start", "enter_size", "enter_proc", "enter_bid", "edge")

    events: Tuple[Event, ...]
    enter_start: int
    enter_size: int
    enter_proc: Optional[str]
    enter_bid: Optional[BlockId]
    edge: Optional[Tuple[str, BlockId, BlockId]]

    def __init__(
        self,
        events: Tuple[Event, ...],
        enter: Optional[Tuple[str, BlockId, int, int]],
        edge: Optional[Tuple[str, BlockId, BlockId]],
    ):
        self.events = events
        if enter is None:
            self.enter_size = -1
            self.enter_start = 0
            self.enter_proc = None
            self.enter_bid = None
        else:
            self.enter_proc, self.enter_bid, self.enter_start, self.enter_size = enter
        self.edge = edge


def compile_steps(linked: LinkedProgram, trace: DecisionTrace) -> List[_Step]:
    """Bind every step template to ``linked``'s addresses and senses."""
    program = linked.program
    nodes = _compile_nodes(linked)
    entry_addr = {name: linked.entry_address(name) for name in program.order}
    entries = {name: program.procedure(name).entry for name in program.order}
    step = INSTRUCTION_BYTES
    cond_k, uncond_k, indirect_k = tr.COND, tr.UNCOND, tr.INDIRECT
    call_k, icall_k, ret_k = tr.CALL, tr.ICALL, tr.RET

    compiled: List[_Step] = []
    for template in trace.templates:
        kind = template[0]
        if kind == T_BRANCH:
            _, proc, bid, succ = template
            node = nodes[proc][bid]
            dst = nodes[proc][succ]
            if node.kind is TerminatorKind.COND:
                site = node.term_addr
                if succ == node.taken_target:
                    events: Tuple = ((cond_k, site, dst.start, True),)
                elif node.jump_addr is not None:
                    events = (
                        (cond_k, site, site + step, False),
                        (uncond_k, node.jump_addr, dst.start, True),
                    )
                else:
                    events = ((cond_k, site, site + step, False),)
            elif node.kind is TerminatorKind.FALLTHROUGH:
                if node.jump_addr is not None:
                    events = ((uncond_k, node.jump_addr, dst.start, True),)
                else:
                    events = ()
            elif node.kind is TerminatorKind.UNCOND:
                if node.branch_removed:
                    events = ()
                else:
                    events = ((uncond_k, node.term_addr, dst.start, True),)
            else:  # INDIRECT
                events = ((indirect_k, node.term_addr, dst.start, True),)
            compiled.append(
                _Step(events, (proc, succ, dst.start, dst.size), (proc, bid, succ))
            )
        elif kind == T_CALL:
            _, proc, bid, call_idx, callee = template
            site, _static_callee, chooser = nodes[proc][bid].calls[call_idx]
            event_kind = icall_k if chooser is not None else call_k
            events = ((event_kind, site, entry_addr[callee], True),)
            entry_bid = entries[callee]
            entry_node = nodes[callee][entry_bid]
            compiled.append(
                _Step(events, (callee, entry_bid, entry_node.start, entry_node.size), None)
            )
        elif kind == T_RET:
            _, proc, bid, caller_proc, caller_bid, resume_idx = template
            site = nodes[proc][bid].term_addr
            ret_site = nodes[caller_proc][caller_bid].calls[resume_idx - 1][0]
            events = ((ret_k, site, ret_site + step, True),)
            compiled.append(_Step(events, None, None))
        else:  # T_FINAL
            _, proc, bid = template
            events = ((ret_k, nodes[proc][bid].term_addr, 0, True),)
            compiled.append(_Step(events, None, None))
    return compiled


def replay(
    linked: LinkedProgram,
    trace: DecisionTrace,
    listeners: Sequence[EventListener] = (),
    block_listeners: Sequence[BlockListener] = (),
    profile_hook: Optional[Callable[[str, BlockId, BlockId], None]] = None,
    block_hook: Optional[Callable[[str, BlockId], None]] = None,
    max_events: Optional[int] = None,
    compiled: Optional[List[_Step]] = None,
) -> ExecutionResult:
    """Faithful replay: same events, hooks, order and cut-off as execute.

    Drop-in equivalent of :func:`repro.sim.executor.execute` driven by a
    decision trace instead of behaviours — including the exact
    ``max_events`` semantics (an entered block's instructions are not
    counted when the cap fires on the transfer into it).
    """
    if compiled is None:
        compiled = compile_steps(linked, trace)
    program = linked.program
    emit = [listener.on_event for listener in listeners]
    on_block = [listener.on_block for listener in block_listeners]

    entry_proc = program.entry
    entry_bid = program.procedure(entry_proc).entry
    entry_lb = linked.block(entry_proc, entry_bid)

    instructions = entry_lb.size
    events = 0
    blocks_executed = 1
    if on_block:
        for cb in on_block:
            cb(entry_lb.start, entry_lb.size)
    if block_hook is not None:
        block_hook(entry_proc, entry_bid)

    for tid in trace.iter_steps():
        step = compiled[tid]
        edge = step.edge
        if edge is not None and profile_hook is not None:
            profile_hook(edge[0], edge[1], edge[2])
        step_events = step.events
        if step_events:
            for event in step_events:
                for cb in emit:
                    cb(event)
            events += len(step_events)
        if max_events is not None and events >= max_events:
            break
        if step.enter_size >= 0:
            instructions += step.enter_size
            blocks_executed += 1
            if on_block:
                for cb in on_block:
                    cb(step.enter_start, step.enter_size)
            if (
                block_hook is not None
                and step.enter_proc is not None
                and step.enter_bid is not None
            ):
                block_hook(step.enter_proc, step.enter_bid)

    return ExecutionResult(instructions=instructions, events=events, blocks=blocks_executed)


# -- layout-level aggregates ------------------------------------------


class _Aggregates:
    """Per-layout event totals derived from templates alone."""

    __slots__ = (
        "instructions",
        "events",
        "cond_sites",
        "cond_executed",
        "cond_taken",
        "uncond_events",
        "call_events",
        "icall_events",
        "indirect_events",
        "ret_events",
    )

    def __init__(self, linked: LinkedProgram, trace: DecisionTrace, compiled: List[_Step]):
        program = linked.program
        self.instructions = 0
        for (proc, bid), visits in trace.visit_counts(program).items():
            self.instructions += visits * linked.block(proc, bid).size
        self.events = 0
        #: site -> [visits, taken] for every executed conditional site.
        self.cond_sites: Dict[int, List[int]] = {}
        self.cond_executed = 0
        self.cond_taken = 0
        self.uncond_events = 0
        self.call_events = 0
        self.icall_events = 0
        self.indirect_events = 0
        self.ret_events = 0
        cond_k, uncond_k, indirect_k = tr.COND, tr.UNCOND, tr.INDIRECT
        call_k, icall_k = tr.CALL, tr.ICALL
        for step, count in zip(compiled, trace.counts):
            if not step.events or not count:
                continue
            self.events += len(step.events) * count
            for kind, site, _target, taken in step.events:
                if kind == cond_k:
                    entry = self.cond_sites.setdefault(site, [0, 0])
                    entry[0] += count
                    self.cond_executed += count
                    if taken:
                        entry[1] += count
                        self.cond_taken += count
                elif kind == uncond_k:
                    self.uncond_events += count
                elif kind == call_k:
                    self.call_events += count
                elif kind == icall_k:
                    self.icall_events += count
                elif kind == indirect_k:
                    self.indirect_events += count
                else:
                    self.ret_events += count


def _serve_static(sim: Any, agg: _Aggregates, trace: DecisionTrace) -> None:
    """Apply a whole replay to a stateless-per-site static predictor.

    Uses the sim's own ``predict_cond`` once per site (the prediction is
    layout-adjusted — BT/FNT reads the layout's taken target, likely
    bits flip with inversions) and the trace's return-stack statistics,
    which are layout-invariant (see :meth:`DecisionTrace.ras_stats`).
    """
    counts = sim.counts
    predict = sim.predict_cond
    correct = 0
    misfetches = 0
    mispredicts = 0
    for site, (visits, taken) in agg.cond_sites.items():
        if predict(site):
            correct += taken
            misfetches += taken
            mispredicts += visits - taken
        else:
            correct += visits - taken
            mispredicts += taken
    pushes, pops, ras_correct = trace.ras_stats(sim.ras.depth)
    counts.cond_executed += agg.cond_executed
    counts.cond_correct += correct
    counts.misfetches += misfetches + agg.uncond_events + agg.call_events
    counts.mispredicts += (
        mispredicts
        + agg.icall_events
        + agg.indirect_events
        + (pops - ras_correct)
    )
    ras = sim.ras
    ras.pushes += pushes
    ras.pops += pops
    ras.correct += ras_correct


# -- inlined fast consumers -------------------------------------------


class _DirectPHTFeed:
    """DirectMappedPHT.on_event inlined over realised event chunks."""

    def __init__(self, sim: DirectMappedPHT):
        self.sim = sim

    def feed(self, chunk: List[Tuple[int, int, int, bool]]) -> None:
        sim = self.sim
        counts = sim.counts
        table = sim.table
        counters = table.counters
        mask = table.mask
        push = sim.ras.push
        pop = sim.ras.pop_predict
        mis = counts.misfetches
        mp = counts.mispredicts
        ce = counts.cond_executed
        cc = counts.cond_correct
        for kind, site, target, taken in chunk:
            if kind == 0:  # COND
                ce += 1
                index = (site >> 2) & mask
                value = counters[index]
                if taken:
                    if value < 3:
                        counters[index] = value + 1
                    if value >= 2:
                        cc += 1
                        mis += 1
                    else:
                        mp += 1
                else:
                    if value > 0:
                        counters[index] = value - 1
                    if value >= 2:
                        mp += 1
                    else:
                        cc += 1
            elif kind == 1:  # UNCOND
                mis += 1
            elif kind == 3:  # CALL
                mis += 1
                push(site + 4)
            elif kind == 4:  # ICALL
                mp += 1
                push(site + 4)
            elif kind == 2:  # INDIRECT
                mp += 1
            else:  # RET
                if not pop(target):
                    mp += 1
        counts.misfetches = mis
        counts.mispredicts = mp
        counts.cond_executed = ce
        counts.cond_correct = cc


class _CorrelationPHTFeed:
    """CorrelationPHT (gshare) inlined over realised event chunks."""

    def __init__(self, sim: CorrelationPHT):
        self.sim = sim

    def feed(self, chunk: List[Tuple[int, int, int, bool]]) -> None:
        sim = self.sim
        counts = sim.counts
        table = sim.table
        counters = table.counters
        mask = table.mask
        history = sim.history
        history_mask = sim.history_mask
        push = sim.ras.push
        pop = sim.ras.pop_predict
        mis = counts.misfetches
        mp = counts.mispredicts
        ce = counts.cond_executed
        cc = counts.cond_correct
        for kind, site, target, taken in chunk:
            if kind == 0:  # COND
                ce += 1
                index = ((site >> 2) ^ history) & mask
                value = counters[index]
                if taken:
                    if value < 3:
                        counters[index] = value + 1
                    history = ((history << 1) | 1) & history_mask
                    if value >= 2:
                        cc += 1
                        mis += 1
                    else:
                        mp += 1
                else:
                    if value > 0:
                        counters[index] = value - 1
                    history = (history << 1) & history_mask
                    if value >= 2:
                        mp += 1
                    else:
                        cc += 1
            elif kind == 1:  # UNCOND
                mis += 1
            elif kind == 3:  # CALL
                mis += 1
                push(site + 4)
            elif kind == 4:  # ICALL
                mp += 1
                push(site + 4)
            elif kind == 2:  # INDIRECT
                mp += 1
            else:  # RET
                if not pop(target):
                    mp += 1
        sim.history = history
        counts.misfetches = mis
        counts.mispredicts = mp
        counts.cond_executed = ce
        counts.cond_correct = cc


class _BTBFeed:
    """BTBSim.on_event (with BTB.lookup/insert) inlined over chunks."""

    def __init__(self, sim: BTBSim):
        self.sim = sim

    def feed(self, chunk: List[Tuple[int, int, int, bool]]) -> None:
        sim = self.sim
        counts = sim.counts
        btb = sim.btb
        sets = btb._sets
        nsets = btb.sets
        assoc = btb.assoc
        clock = btb._clock
        hits = btb.hits
        misses = btb.misses
        make_entry = _BTBEntry
        push = sim.ras.push
        pop = sim.ras.pop_predict
        mis = counts.misfetches
        mp = counts.mispredicts
        ce = counts.cond_executed
        cc = counts.cond_correct
        for kind, site, target, taken in chunk:
            if kind == 5:  # RET — no BTB traffic
                if not pop(target):
                    mp += 1
                continue
            clock += 1
            bucket = sets[(site >> 2) % nsets]
            entry = bucket.get(site)
            if kind == 0:  # COND
                ce += 1
                if entry is not None:
                    hits += 1
                    entry.stamp = clock
                    predicted = entry.counter >= 2
                    if taken:
                        if entry.counter < 3:
                            entry.counter += 1
                        entry.target = target
                    elif entry.counter > 0:
                        entry.counter -= 1
                else:
                    misses += 1
                    predicted = False
                    if taken:
                        clock += 1
                        if len(bucket) >= assoc:
                            victim = min(bucket, key=lambda tag: bucket[tag].stamp)
                            del bucket[victim]
                        bucket[site] = make_entry(target, 2, clock)
                if predicted == taken:
                    cc += 1
                else:
                    mp += 1
            elif kind == 1 or kind == 3:  # UNCOND / CALL
                if entry is None:
                    misses += 1
                    mis += 1
                    clock += 1
                    if len(bucket) >= assoc:
                        victim = min(bucket, key=lambda tag: bucket[tag].stamp)
                        del bucket[victim]
                    bucket[site] = make_entry(target, 2, clock)
                else:
                    hits += 1
                    entry.stamp = clock
                if kind == 3:
                    push(site + 4)
            else:  # ICALL / INDIRECT
                if entry is None:
                    misses += 1
                    mp += 1
                    clock += 1
                    if len(bucket) >= assoc:
                        victim = min(bucket, key=lambda tag: bucket[tag].stamp)
                        del bucket[victim]
                    bucket[site] = make_entry(target, 2, clock)
                else:
                    hits += 1
                    entry.stamp = clock
                    if entry.target != target:
                        mp += 1
                        entry.target = target
                if kind == 4:
                    push(site + 4)
        btb._clock = clock
        btb.hits = hits
        btb.misses = misses
        counts.misfetches = mis
        counts.mispredicts = mp
        counts.cond_executed = ce
        counts.cond_correct = cc


class _GenericFeed:
    """Faithful per-event feed for listeners outside the fast tiers."""

    def __init__(self, listener: EventListener):
        self.on_event = listener.on_event

    def feed(self, chunk: List[Event]) -> None:
        cb = self.on_event
        for event in chunk:
            cb(event)


#: Exact listener type -> inlined feed constructor (see module docstring).
_FAST_FEEDS: Dict[type, Callable[[Any], Any]] = {
    DirectMappedPHT: _DirectPHTFeed,
    CorrelationPHT: _CorrelationPHTFeed,
    BTBSim: _BTBFeed,
}

_AGGREGATE_TYPES = (FallthroughSim, BTFNTSim, LikelySim)


def run_architectures(
    linked: LinkedProgram,
    trace: DecisionTrace,
    sims: Sequence[Any],
    max_events: Optional[int] = None,
) -> Tuple[int, int, int, int]:
    """Feed every simulator one replay of ``trace`` under ``linked``.

    Returns ``(instructions, events, cond_executed, cond_taken)`` — the
    stream totals the :class:`SimulationReport` header wants.  Each sim
    is served by the cheapest faithful tier its exact type allows; a
    ``max_events`` cap forces the fully faithful path because aggregate
    totals have no notion of a mid-stream cut.
    """
    if max_events is not None:
        executed = 0
        taken = 0

        class _Mix:
            def on_event(self, event: Event) -> None:
                nonlocal executed, taken
                if event[0] == 0:
                    executed += 1
                    if event[3]:
                        taken += 1

        result = replay(
            linked, trace, listeners=list(sims) + [_Mix()], max_events=max_events
        )
        return result.instructions, result.events, executed, taken

    compiled = compile_steps(linked, trace)
    agg = _Aggregates(linked, trace, compiled)

    feeds: List[Any] = []
    for sim in sims:
        # Exact-type dispatch: subclasses (tournament, local-history PHTs)
        # override update rules and must fall through to the generic tier.
        sim_type = type(sim)
        if sim_type in _AGGREGATE_TYPES:
            _serve_static(sim, agg, trace)
        elif sim_type in _FAST_FEEDS:
            feeds.append(_FAST_FEEDS[sim_type](sim))
        else:
            feeds.append(_GenericFeed(sim))

    if feeds:
        events_of = [step.events for step in compiled]
        for chunk in trace.iter_chunks():
            realized: List[Tuple[int, int, int, bool]] = []
            extend = realized.extend
            for tid in chunk:
                step_events = events_of[tid]
                if step_events:
                    extend(step_events)
            for feed in feeds:
                feed.feed(realized)

    return agg.instructions, agg.events, agg.cond_executed, agg.cond_taken
