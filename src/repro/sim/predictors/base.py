"""Common penalty accounting for the static and PHT architectures.

Section 6 of the paper defines the Branch Execution Penalty (BEP) rules:

    "For the static branch and PHT architectures, unconditional branches,
    correctly predicted taken conditional branches and direct procedure
    calls all cause misfetch penalties.  Whereas, mispredicted conditional
    branches, mispredicted returns, and all indirect jumps cause
    mispredict penalties."

with a one-cycle misfetch and a four-cycle mispredict.  Subclasses supply
only the conditional direction predictor; returns go through the shared
32-entry return stack.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import trace as tr
from .ras import ReturnStack

#: Penalty cycles (section 6).
MISFETCH_CYCLES = 1
MISPREDICT_CYCLES = 4


@dataclass
class PenaltyCounts:
    """Aggregated penalties and prediction outcomes of one simulation."""

    misfetches: int = 0
    mispredicts: int = 0
    cond_executed: int = 0
    cond_correct: int = 0

    @property
    def bep(self) -> int:
        """Branch execution penalty in cycles."""
        return self.misfetches * MISFETCH_CYCLES + self.mispredicts * MISPREDICT_CYCLES

    def bep_with(self, misfetch_cycles: float, mispredict_cycles: float) -> float:
        """BEP re-weighted with alternative penalty costs.

        Penalty *counts* are layout properties; the cycle weights are
        machine properties.  Sweeping the weights over one simulation's
        counts models deeper pipelines without re-running anything — how
        the sensitivity analyses project the paper's wide-issue argument.
        """
        return self.misfetches * misfetch_cycles + self.mispredicts * mispredict_cycles

    @property
    def cond_accuracy(self) -> float:
        if not self.cond_executed:
            return 1.0
        return self.cond_correct / self.cond_executed


class BranchArchSim:
    """Base simulator implementing the static/PHT penalty rules."""

    name = "abstract"

    def __init__(self, ras_depth: int = 32):
        self.counts = PenaltyCounts()
        self.ras = ReturnStack(ras_depth)

    # -- subclass interface ---------------------------------------------
    def predict_cond(self, site: int) -> bool:
        """Predict the direction of the conditional branch at ``site``."""
        raise NotImplementedError

    def update_cond(self, site: int, taken: bool) -> None:
        """Train the predictor with the branch outcome (default: none)."""

    # -- event consumption ------------------------------------------------
    def on_event(self, event) -> None:
        """Predict and train on one event (static/PHT penalty rules)."""
        kind, site, target, taken = event
        counts = self.counts
        if kind == tr.COND:
            counts.cond_executed += 1
            predicted = self.predict_cond(site)
            self.update_cond(site, taken)
            if predicted == taken:
                counts.cond_correct += 1
                if taken:
                    counts.misfetches += 1
            else:
                counts.mispredicts += 1
        elif kind == tr.UNCOND:
            counts.misfetches += 1
        elif kind == tr.CALL:
            counts.misfetches += 1
            self.ras.push(site + 4)
        elif kind == tr.ICALL:
            counts.mispredicts += 1
            self.ras.push(site + 4)
        elif kind == tr.INDIRECT:
            counts.mispredicts += 1
        else:  # RET
            if not self.ras.pop_predict(target):
                counts.mispredicts += 1

    # ------------------------------------------------------------------
    @property
    def bep(self) -> int:
        return self.counts.bep

    def reset(self) -> None:
        """Zero the penalty counters and the return stack."""
        self.counts = PenaltyCounts()
        self.ras.reset()
