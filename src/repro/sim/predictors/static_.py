"""The three static branch prediction architectures (section 3).

* ``FALLTHROUGH`` — the fall-through path is always assumed.
* ``BT/FNT`` — backward taken, forward not taken (HP PA-RISC, AXP 21064).
* ``LIKELY`` — a per-branch likely bit set from profile information (Tera).

The BT/FNT and LIKELY predictors need static per-site information that is
not carried in trace events — the taken-target address and the profile
majority direction respectively — so they are constructed from the linked
binary (and, for LIKELY, the alignment profile), exactly as the hardware
reads the branch displacement and the compiler sets the likely bit.
"""

from __future__ import annotations

from typing import Dict

from ...cfg import TerminatorKind
from ...isa.encoder import LinkedProgram
from ...profiling.edge_profile import EdgeProfile
from .base import BranchArchSim


def conditional_taken_targets(linked: LinkedProgram) -> Dict[int, int]:
    """Map each conditional branch site to its (layout) taken target."""
    sites: Dict[int, int] = {}
    for proc in linked.program:
        for block in proc:
            if block.kind is not TerminatorKind.COND:
                continue
            lb = linked.block(proc.name, block.bid)
            assert lb.term_address is not None
            target_bid = lb.placement.taken_target
            assert target_bid is not None
            sites[lb.term_address] = linked.block_address(proc.name, target_bid)
    return sites


def likely_bits(linked: LinkedProgram, profile: EdgeProfile) -> Dict[int, bool]:
    """Per-site likely bits: predict taken iff the taken side is the
    profile-majority direction *under this layout* (inversions flip it).

    The paper sets likely bits from "the profiles that are used to create
    the branch alignments".
    """
    bits: Dict[int, bool] = {}
    for proc in linked.program:
        for block in proc:
            if block.kind is not TerminatorKind.COND:
                continue
            lb = linked.block(proc.name, block.bid)
            assert lb.term_address is not None
            taken_bid = lb.placement.taken_target
            taken_edge = proc.taken_edge(block.bid)
            fall_edge = proc.fallthrough_edge(block.bid)
            assert taken_edge is not None and fall_edge is not None
            other_bid = (
                fall_edge.dst if taken_bid == taken_edge.dst else taken_edge.dst
            )
            w_taken = profile.weight(proc.name, block.bid, taken_bid)
            w_other = profile.weight(proc.name, block.bid, other_bid)
            bits[lb.term_address] = w_taken > w_other
    return bits


class FallthroughSim(BranchArchSim):
    """Always predicts not-taken; every taken conditional mispredicts."""

    name = "fallthrough"

    def predict_cond(self, site: int) -> bool:
        return False


class BTFNTSim(BranchArchSim):
    """Backward taken, forward not taken.

    The predicted direction of a branch depends on where the layout put
    its taken target, so this simulator is built per linked binary.
    """

    name = "btfnt"

    def __init__(self, linked, ras_depth: int = 32):
        """``linked`` is a :class:`LinkedProgram`, or directly a mapping of
        conditional site address to taken-target address (tests)."""
        super().__init__(ras_depth)
        if isinstance(linked, dict):
            self._taken_targets = dict(linked)
        else:
            self._taken_targets = conditional_taken_targets(linked)

    def predict_cond(self, site: int) -> bool:
        return self._taken_targets[site] < site


class LikelySim(BranchArchSim):
    """Profile-driven likely-bit prediction."""

    name = "likely"

    def __init__(self, linked: LinkedProgram, profile: EdgeProfile, ras_depth: int = 32):
        super().__init__(ras_depth)
        self._bits = likely_bits(linked, profile)

    def predict_cond(self, site: int) -> bool:
        return self._bits[site]
