"""The return-address stack used by every simulated architecture.

"In all of our static and dynamic architecture simulations we simulated a
32-entry return stack, which is very accurate at predicting the
destination for return instructions." (section 6)
"""

from __future__ import annotations

from typing import List


class ReturnStack:
    """A fixed-depth circular return-address stack.

    Pushes beyond the capacity overwrite the oldest entry (standard
    hardware behaviour), which is what makes deep recursion degrade
    prediction instead of failing.
    """

    def __init__(self, depth: int = 32):
        if depth < 1:
            raise ValueError("return stack needs at least one entry")
        self.depth = depth
        self._slots: List[int] = [0] * depth
        self._top = 0          # index of the next free slot
        self._live = 0         # number of valid entries (<= depth)
        self.pushes = 0
        self.pops = 0
        self.correct = 0

    def push(self, return_address: int) -> None:
        """Push a return address (wrapping over the oldest entry)."""
        self._slots[self._top] = return_address
        self._top = (self._top + 1) % self.depth
        if self._live < self.depth:
            self._live += 1
        self.pushes += 1

    def pop_predict(self, actual_target: int) -> bool:
        """Pop the stack and report whether it predicted ``actual_target``.

        An empty stack predicts nothing and therefore mispredicts.
        """
        self.pops += 1
        if self._live == 0:
            return False
        self._top = (self._top - 1) % self.depth
        self._live -= 1
        predicted = self._slots[self._top]
        if predicted == actual_target:
            self.correct += 1
            return True
        return False

    def reset(self) -> None:
        """Empty the stack and zero the accuracy counters."""
        self._top = 0
        self._live = 0
        self.pushes = self.pops = self.correct = 0

    @property
    def accuracy(self) -> float:
        return self.correct / self.pops if self.pops else 1.0
