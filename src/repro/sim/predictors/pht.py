"""Pattern history table predictors (section 3, dynamic methods).

Two 4096-entry tables of 2-bit saturating counters (1 KB of state each):

* ``DirectMappedPHT`` — indexed by the branch site address alone.
* ``CorrelationPHT`` — the degenerate two-level scheme of Pan et al. with
  McFarling's improvement: a 12-bit global history register of recent
  conditional outcomes XORed with the site address (gshare), "the variant
  that McFarling found to be the most accurate".

PHTs predict only conditional-branch *direction*; "these methods do
nothing for misfetch penalties", so correctly predicted taken branches
still pay the one-cycle misfetch, like the static architectures.
"""

from __future__ import annotations

from .base import BranchArchSim
from .counters import CounterTable

#: Table size used throughout the paper (4096 two-bit counters = 1 KB).
PAPER_PHT_ENTRIES = 4096


class DirectMappedPHT(BranchArchSim):
    """A per-site table of two-bit counters."""

    name = "pht-direct"

    def __init__(self, entries: int = PAPER_PHT_ENTRIES, ras_depth: int = 32):
        super().__init__(ras_depth)
        self.table = CounterTable(entries)

    def _index(self, site: int) -> int:
        return site >> 2

    def predict_cond(self, site: int) -> bool:
        return self.table.predict(self._index(site))

    def update_cond(self, site: int, taken: bool) -> None:
        self.table.update(self._index(site), taken)

    def reset(self) -> None:
        """Reset counters, return stack and the pattern table."""
        super().reset()
        self.table.reset()


class CorrelationPHT(DirectMappedPHT):
    """Global-history-XOR-address (gshare) correlation predictor."""

    name = "pht-correlation"

    def __init__(
        self,
        entries: int = PAPER_PHT_ENTRIES,
        history_bits: int = 12,
        ras_depth: int = 32,
    ):
        super().__init__(entries, ras_depth)
        if (1 << history_bits) < entries:
            # A shorter history than the index width is legal (gshare
            # simply XORs into the low bits) but the paper pairs a 12-bit
            # register with a 4096-entry table, so warn via validation.
            pass
        self.history_bits = history_bits
        self.history_mask = (1 << history_bits) - 1
        self.history = 0

    def _index(self, site: int) -> int:
        return (site >> 2) ^ self.history

    def update_cond(self, site: int, taken: bool) -> None:
        # Index must be computed before the history shifts; BranchArchSim
        # calls predict_cond first, so recompute here with the same value.
        self.table.update(self._index(site), taken)
        self.history = ((self.history << 1) | (1 if taken else 0)) & self.history_mask

    def reset(self) -> None:
        """Additionally clear the global history register."""
        super().reset()
        self.history = 0


class TournamentPHT(BranchArchSim):
    """McFarling's combining predictor (extension).

    The paper takes its correlation variant from McFarling's tech report;
    the same report's headline design *combines* two predictors with a
    per-site chooser table: each chooser counter tracks which component
    predicted better at that site and selects it next time.  Here the
    components are the paper's two PHTs — per-site counters (good for
    biased branches) and gshare (good for patterns) — so the tournament
    inherits the better of Table 4's two dynamic direction predictors.

    Total state: two 4096-counter tables + a 4096-counter chooser = 3 KB.
    """

    name = "pht-tournament"

    def __init__(
        self,
        entries: int = PAPER_PHT_ENTRIES,
        history_bits: int = 12,
        ras_depth: int = 32,
    ):
        super().__init__(ras_depth)
        self.local = CounterTable(entries)
        self.gshare = CounterTable(entries)
        self.chooser = CounterTable(entries, initial=1)  # weakly favour local
        self.history_mask = (1 << history_bits) - 1
        self.history = 0

    def predict_cond(self, site: int) -> bool:
        """Let the chooser pick a component, then use its prediction."""
        index = site >> 2
        if self.chooser.predict(index):  # high counter: trust gshare
            return self.gshare.predict(index ^ self.history)
        return self.local.predict(index)

    def update_cond(self, site: int, taken: bool) -> None:
        """Train both components and the chooser, then shift history."""
        index = site >> 2
        local_correct = self.local.predict(index) == taken
        gshare_correct = self.gshare.predict(index ^ self.history) == taken
        if local_correct != gshare_correct:
            # Move the chooser toward whichever component was right.
            self.chooser.update(index, gshare_correct)
        self.local.update(index, taken)
        self.gshare.update(index ^ self.history, taken)
        self.history = ((self.history << 1) | (1 if taken else 0)) & self.history_mask

    def reset(self) -> None:
        """Reset components, chooser, history and counters."""
        super().reset()
        self.local.reset()
        self.gshare.reset()
        self.chooser.reset()
        self.history = 0


class LocalHistoryPHT(DirectMappedPHT):
    """A per-address two-level predictor (Yeh & Patt's PAs family).

    The paper's related work covers both global-history correlation (Pan
    et al.) and per-address two-level schemes (Yeh & Patt).  This variant
    keeps a table of per-site history registers; each prediction indexes
    the shared counter table with the site XOR its own history ("pshare").
    Local history captures per-branch periodicity — short counted loops —
    without the cross-branch interference a global register suffers.

    This predictor is an *extension*: Tables 3/4 simulate only the two
    PHTs the paper describes, but the extension bench compares all three.
    """

    name = "pht-local"

    def __init__(
        self,
        entries: int = PAPER_PHT_ENTRIES,
        history_bits: int = 10,
        history_entries: int = 1024,
        ras_depth: int = 32,
    ):
        super().__init__(entries, ras_depth)
        if history_entries < 1 or history_entries & (history_entries - 1):
            raise ValueError(f"history table size must be a power of two, got {history_entries}")
        self.history_bits = history_bits
        self.history_mask = (1 << history_bits) - 1
        self.history_entries = history_entries
        self.histories = [0] * history_entries

    def _history_slot(self, site: int) -> int:
        return (site >> 2) & (self.history_entries - 1)

    def _index(self, site: int) -> int:
        return (site >> 2) ^ self.histories[self._history_slot(site)]

    def update_cond(self, site: int, taken: bool) -> None:
        self.table.update(self._index(site), taken)
        slot = self._history_slot(site)
        self.histories[slot] = (
            (self.histories[slot] << 1) | (1 if taken else 0)
        ) & self.history_mask

    def reset(self) -> None:
        """Additionally clear every per-site history register."""
        super().reset()
        self.histories = [0] * self.history_entries
