"""Branch target buffer simulators (section 3, dynamic methods).

The paper models two Pentium-style configurations — a 64-entry 2-way and
a 256-entry 4-way set-associative BTB — with these rules:

* only *taken* branches are entered; a BTB miss predicts fall-through;
* entries hold the branch target plus a 2-bit saturating counter used to
  predict conditional direction;
* the BTB holds conditional branches, unconditional branches, indirect
  jumps and procedure calls (returns are predicted by the return stack
  shared with every other simulation);
* "taken branches ... found in the BTB do not necessarily cause misfetch
  penalties" — a hit that correctly redirects fetch costs nothing.

Penalty accounting therefore differs from the static/PHT rules: an
unconditional branch or direct call only misfetches on a BTB miss, an
indirect jump only mispredicts when the BTB lacks (or has a stale) target,
and a correctly predicted taken conditional that hits costs nothing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .. import trace as tr
from .base import MISFETCH_CYCLES, MISPREDICT_CYCLES, PenaltyCounts
from .ras import ReturnStack


class _Entry:
    """One BTB line: target address + direction counter + LRU stamp."""

    __slots__ = ("target", "counter", "stamp")

    def __init__(self, target: int, counter: int, stamp: int):
        self.target = target
        self.counter = counter
        self.stamp = stamp


class BTB:
    """A set-associative branch target buffer with LRU replacement."""

    def __init__(self, entries: int, assoc: int):
        if entries < 1 or entries % assoc:
            raise ValueError(f"bad BTB geometry {entries} entries / {assoc}-way")
        self.entries = entries
        self.assoc = assoc
        self.sets = entries // assoc
        self._sets: List[Dict[int, _Entry]] = [dict() for _ in range(self.sets)]
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def _set_for(self, site: int) -> Dict[int, _Entry]:
        return self._sets[(site >> 2) % self.sets]

    def lookup(self, site: int) -> Optional[_Entry]:
        """Probe the BTB; hits refresh the LRU stamp."""
        self._clock += 1
        entry = self._set_for(site).get(site)
        if entry is None:
            self.misses += 1
            return None
        entry.stamp = self._clock
        self.hits += 1
        return entry

    def insert(self, site: int, target: int, counter: int = 2) -> None:
        """Allocate (or refresh) an entry for a taken branch."""
        bucket = self._set_for(site)
        self._clock += 1
        entry = bucket.get(site)
        if entry is not None:
            entry.target = target
            entry.stamp = self._clock
            return
        if len(bucket) >= self.assoc:
            victim = min(bucket, key=lambda tag: bucket[tag].stamp)
            del bucket[victim]
        bucket[site] = _Entry(target, counter, self._clock)

    def reset(self) -> None:
        """Empty every set and zero the hit/miss counters."""
        self._sets = [dict() for _ in range(self.sets)]
        self._clock = 0
        self.hits = self.misses = 0

    @property
    def hit_rate(self) -> float:
        probes = self.hits + self.misses
        return self.hits / probes if probes else 0.0


class BTBSim:
    """Branch architecture built around a BTB plus a return stack."""

    def __init__(self, entries: int, assoc: int, ras_depth: int = 32):
        self.name = f"btb-{entries}x{assoc}"
        self.btb = BTB(entries, assoc)
        self.ras = ReturnStack(ras_depth)
        self.counts = PenaltyCounts()

    # ------------------------------------------------------------------
    def on_event(self, event) -> None:
        """Predict and train on one control-flow event (BTB rules)."""
        kind, site, target, taken = event
        counts = self.counts
        btb = self.btb
        if kind == tr.COND:
            counts.cond_executed += 1
            entry = btb.lookup(site)
            if entry is not None:
                predicted = entry.counter >= 2
                if taken:
                    if entry.counter < 3:
                        entry.counter += 1
                    entry.target = target
                elif entry.counter > 0:
                    entry.counter -= 1
            else:
                predicted = False
                if taken:
                    btb.insert(site, target)
            if predicted == taken:
                counts.cond_correct += 1
                # A predicted-taken hit redirects fetch from the BTB:
                # no misfetch.  A correct not-taken costs nothing either.
            else:
                counts.mispredicts += 1
        elif kind == tr.UNCOND:
            if btb.lookup(site) is None:
                counts.misfetches += 1
                btb.insert(site, target)
        elif kind == tr.CALL:
            if btb.lookup(site) is None:
                counts.misfetches += 1
                btb.insert(site, target)
            self.ras.push(site + 4)
        elif kind == tr.ICALL:
            entry = btb.lookup(site)
            if entry is None:
                counts.mispredicts += 1
                btb.insert(site, target)
            elif entry.target != target:
                counts.mispredicts += 1
                entry.target = target
            self.ras.push(site + 4)
        elif kind == tr.INDIRECT:
            entry = btb.lookup(site)
            if entry is None:
                counts.mispredicts += 1
                btb.insert(site, target)
            elif entry.target != target:
                counts.mispredicts += 1
                entry.target = target
        else:  # RET
            if not self.ras.pop_predict(target):
                counts.mispredicts += 1

    # ------------------------------------------------------------------
    @property
    def bep(self) -> int:
        return self.counts.bep

    def reset(self) -> None:
        """Restore the BTB, return stack and counters to power-up state."""
        self.btb.reset()
        self.ras.reset()
        self.counts = PenaltyCounts()


def pentium_btb(ras_depth: int = 32) -> BTBSim:
    """The 256-entry 4-way configuration used by the Intel Pentium."""
    return BTBSim(256, 4, ras_depth)


def small_btb(ras_depth: int = 32) -> BTBSim:
    """The paper's 64-entry 2-way configuration."""
    return BTBSim(64, 2, ras_depth)
