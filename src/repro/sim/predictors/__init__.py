"""Branch prediction architecture simulators."""

from .base import (
    BranchArchSim,
    MISFETCH_CYCLES,
    MISPREDICT_CYCLES,
    PenaltyCounts,
)
from .btb import BTB, BTBSim, pentium_btb, small_btb
from .counters import CounterTable, SaturatingCounter
from .pht import PAPER_PHT_ENTRIES, CorrelationPHT, DirectMappedPHT, LocalHistoryPHT, TournamentPHT
from .ras import ReturnStack
from .static_ import (
    BTFNTSim,
    FallthroughSim,
    LikelySim,
    conditional_taken_targets,
    likely_bits,
)

__all__ = [
    "BTB",
    "BTBSim",
    "BTFNTSim",
    "BranchArchSim",
    "CorrelationPHT",
    "CounterTable",
    "DirectMappedPHT",
    "FallthroughSim",
    "LocalHistoryPHT",
    "LikelySim",
    "MISFETCH_CYCLES",
    "MISPREDICT_CYCLES",
    "PAPER_PHT_ENTRIES",
    "PenaltyCounts",
    "ReturnStack",
    "SaturatingCounter",
    "TournamentPHT",
    "conditional_taken_targets",
    "likely_bits",
    "pentium_btb",
    "small_btb",
]
