"""Saturating up/down counters, the building block of PHTs and BTBs."""

from __future__ import annotations

from typing import List


class SaturatingCounter:
    """An n-bit saturating up/down counter predicting branch direction.

    Values of ``2**(bits-1)`` and above predict taken.  A single counter
    object is mostly used in tests; the table simulators inline the
    arithmetic on plain integer lists for speed.
    """

    def __init__(self, bits: int = 2, value: int = 1):
        if bits < 1:
            raise ValueError("counter needs at least one bit")
        self.maximum = (1 << bits) - 1
        self.threshold = 1 << (bits - 1)
        if not 0 <= value <= self.maximum:
            raise ValueError(f"initial value {value} out of range")
        self.value = value

    @property
    def predict_taken(self) -> bool:
        return self.value >= self.threshold

    def update(self, taken: bool) -> None:
        """Saturating increment/decrement toward the outcome."""
        if taken:
            if self.value < self.maximum:
                self.value += 1
        elif self.value > 0:
            self.value -= 1


class CounterTable:
    """A fixed-size table of 2-bit saturating counters.

    The hot-path operations work directly on an integer list; counters are
    initialised weakly-not-taken (1), a conventional power-up state.
    """

    BITS = 2
    MAX = 3
    THRESHOLD = 2

    def __init__(self, size: int, initial: int = 1):
        if size < 1 or size & (size - 1):
            raise ValueError(f"table size must be a power of two, got {size}")
        if not 0 <= initial <= self.MAX:
            raise ValueError(f"bad initial counter value {initial}")
        self.size = size
        self.mask = size - 1
        self.counters: List[int] = [initial] * size
        self._initial = initial

    def predict(self, index: int) -> bool:
        """True if the counter at ``index`` predicts taken."""
        return self.counters[index & self.mask] >= self.THRESHOLD

    def update(self, index: int, taken: bool) -> None:
        """Saturating increment/decrement toward the outcome."""
        index &= self.mask
        value = self.counters[index]
        if taken:
            if value < self.MAX:
                self.counters[index] = value + 1
        elif value > 0:
            self.counters[index] = value - 1

    def reset(self) -> None:
        """Restore every counter to its initial value."""
        self.counters = [self._initial] * self.size

    @property
    def storage_bits(self) -> int:
        """Total predictor storage in bits (the paper quotes 1 KB)."""
        return self.size * self.BITS
