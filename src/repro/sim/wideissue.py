"""A wide-issue fetch model: quantifying the paper's motivation.

The paper argues branch alignment will matter *more* on wide-issue
machines: "Eliminating instruction misfetches will be increasingly
important as super-scalar architectures become more common — a four-issue
super-scalar architecture could encounter a branch every two or three
cycles.  It should benefit such architectures to have frequent
fall-through branches.  However, the relative CPI metric shown only
reflects the improvement of a single issue architecture."

This model supplies the missing metric.  A ``W``-wide front end fetches up
to ``W`` *sequential* instructions per cycle; any taken control transfer
ends the fetch packet, wasting the packet's remaining slots.  Fetch cycles
are therefore the sum over maximal sequential runs of ``ceil(run / W)``,
plus the usual misfetch/mispredict penalties.  Fall-through-heavy layouts
produce longer runs, so alignment's benefit grows with issue width —
exactly the claim, made measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..isa.encoder import LinkedProgram
from . import trace as tr
from .executor import execute


@dataclass(frozen=True)
class WideIssueConfig:
    """Front-end parameters of the wide-issue model."""

    issue_width: int = 4
    misfetch_cycles: float = 1.0
    mispredict_cycles: float = 4.0

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ValueError(f"issue width must be >= 1, got {self.issue_width}")


class WideIssueFrontEnd:
    """Listener accumulating fetch cycles for a ``W``-wide front end.

    Attach as both an event listener and a block listener.  The direction
    predictor is idealised (profile-perfect, like LIKELY): the point of
    this model is fetch *bandwidth*, so only taken-ness and misfetch
    fragmentation vary between layouts; mispredicts are charged for
    minority directions via the supplied per-site likely bits when given,
    or assumed perfectly predicted otherwise.
    """

    def __init__(self, config: WideIssueConfig = WideIssueConfig(),
                 likely_bits: Optional[dict] = None):
        self.config = config
        self._likely = likely_bits
        self._run = 0           # instructions in the current sequential run
        self.instructions = 0
        self.fetch_cycles = 0
        self.taken_transfers = 0
        self.penalty_cycles = 0.0

    # ------------------------------------------------------------------
    def on_block(self, start: int, size: int) -> None:
        """Extend the current sequential fetch run by one block."""
        self.instructions += size
        self._run += size

    def on_event(self, event) -> None:
        """Close the fetch packet on taken transfers; charge penalties."""
        kind, site, target, taken = event
        if kind == tr.COND:
            if self._likely is not None:
                predicted = self._likely.get(site, False)
                if predicted != taken:
                    self.penalty_cycles += self.config.mispredict_cycles
                elif taken:
                    self.penalty_cycles += self.config.misfetch_cycles
            if not taken:
                return  # the run continues through a not-taken branch
        else:
            self.penalty_cycles += self.config.misfetch_cycles
        # A taken transfer ends the fetch packet run.
        self.taken_transfers += 1
        self._flush_run()

    def _flush_run(self) -> None:
        if self._run:
            width = self.config.issue_width
            self.fetch_cycles += (self._run + width - 1) // width
            self._run = 0

    # ------------------------------------------------------------------
    @property
    def cycles(self) -> float:
        """Total modelled cycles (flushes the trailing run)."""
        self._flush_run()
        return self.fetch_cycles + self.penalty_cycles

    @property
    def fetch_efficiency(self) -> float:
        """Instructions per fetch cycle, out of ``issue_width``."""
        cycles = self.cycles - self.penalty_cycles
        return self.instructions / cycles if cycles else 0.0


def wide_issue_cycles(
    linked: LinkedProgram,
    config: WideIssueConfig = WideIssueConfig(),
    likely_bits: Optional[dict] = None,
    seed: int = 0,
) -> WideIssueFrontEnd:
    """Run a linked binary through the wide-issue front end."""
    front_end = WideIssueFrontEnd(config, likely_bits)
    execute(linked, listeners=[front_end], block_listeners=[front_end], seed=seed)
    return front_end
