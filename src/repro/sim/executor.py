"""The trace-driven executor: runs a linked binary, emitting branch events.

This plays the role of ATOM in the paper: it "instruments" the program and
streams every break in control flow to the attached listeners (branch
architecture simulators, trace statistics, profilers) without ever
materialising the trace.  Because block behaviours are expressed in terms
of original CFG edge roles, executing the original and an aligned binary
with the same seed replays the identical dynamic basic-block sequence —
only the layout-dependent properties differ: which conditionals are taken,
where inserted/removed unconditional branches execute, and every address.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..cfg import BlockId, Program, TerminatorKind
from ..isa.encoder import INSTRUCTION_BYTES, LinkedProgram
from . import trace as tr


class ExecutionError(RuntimeError):
    """Raised when the executor cannot make progress."""


@dataclass
class ExecutionResult:
    """Summary of one execution run."""

    instructions: int
    events: int
    blocks: int

    @property
    def percent_breaks(self) -> float:
        if not self.instructions:
            return 0.0
        return 100.0 * self.events / self.instructions


class _Node:
    """Pre-resolved per-block execution record (hot-loop friendly)."""

    __slots__ = (
        "bid",
        "kind",
        "size",
        "start",
        "term_addr",
        "jump_addr",
        "branch_removed",
        "behavior",
        "calls",
        "ft_dst",
        "taken_dst",
        "taken_target",
        "indirect_dsts",
    )

    def __init__(self) -> None:
        self.calls: List[Tuple[int, Optional[str], object]] = []
        self.indirect_dsts: List[BlockId] = []


def _compile_nodes(linked: LinkedProgram) -> Dict[str, Dict[BlockId, _Node]]:
    """Flatten CFG + layout + addresses into per-block execution records."""
    nodes: Dict[str, Dict[BlockId, _Node]] = {}
    for proc in linked.program:
        proc_nodes: Dict[BlockId, _Node] = {}
        for block in proc:
            lb = linked.block(proc.name, block.bid)
            node = _Node()
            node.bid = block.bid
            node.kind = block.kind
            node.size = lb.size
            node.start = lb.start
            node.term_addr = lb.term_address
            node.jump_addr = lb.jump_address
            node.branch_removed = lb.placement.branch_removed
            node.behavior = block.behavior
            node.calls = [
                (lb.call_address(c.offset), c.callee, c.chooser) for c in block.calls
            ]
            ft = proc.fallthrough_edge(block.bid)
            node.ft_dst = ft.dst if ft is not None else None
            taken = proc.taken_edge(block.bid)
            node.taken_dst = taken.dst if taken is not None else None
            node.taken_target = lb.placement.taken_target
            if block.kind is TerminatorKind.INDIRECT:
                node.indirect_dsts = [e.dst for e in proc.out_edges(block.bid)]
                if block.behavior is None and len(node.indirect_dsts) > 1:
                    raise ExecutionError(
                        f"{proc.name}: indirect block {block.bid} with multiple "
                        f"targets needs a behaviour"
                    )
            if block.kind is TerminatorKind.COND and block.behavior is None:
                raise ExecutionError(
                    f"{proc.name}: conditional block {block.bid} needs a behaviour"
                )
            proc_nodes[block.bid] = node
        nodes[proc.name] = proc_nodes
    return nodes


def execute(
    linked: LinkedProgram,
    listeners: Sequence[object] = (),
    block_listeners: Sequence[object] = (),
    profile_hook: Optional[Callable[[str, BlockId, BlockId], None]] = None,
    block_hook: Optional[Callable[[str, BlockId], None]] = None,
    seed: int = 0,
    reset: bool = True,
    max_events: Optional[int] = None,
) -> ExecutionResult:
    """Run a linked program from its entry procedure until it returns.

    Args:
        linked: The binary image to execute.
        listeners: Objects with ``on_event(event_tuple)`` — predictors,
            statistics, recorders.  Each receives every event, in order.
        block_listeners: Objects with ``on_block(start, size)`` — used by
            the Alpha I-cache model.
        profile_hook: Called as ``hook(proc_name, src_bid, dst_bid)`` for
            every intra-procedural edge traversal (ATOM-style profiling).
        block_hook: Called as ``hook(proc_name, bid)`` for every block
            execution, in order — the layout-independent block-visit
            sequence the differential oracle compares (addresses are
            ambiguous for zero-size blocks; ids are not).
        seed: Behaviour seed; identical seeds replay identical inputs.
        reset: Reset all behaviours before running (disable only if the
            caller already reset them).
        max_events: Optional safety cap; execution stops cleanly once this
            many events have been emitted.

    Returns:
        An :class:`ExecutionResult` with dynamic instruction/event counts.
    """
    program = linked.program
    if reset:
        program.reset_behaviors(seed)
    nodes = _compile_nodes(linked)
    entry_addr = {name: linked.entry_address(name) for name in program.order}
    emit = [listener.on_event for listener in listeners]
    on_block = [listener.on_block for listener in block_listeners]

    instructions = 0
    events = 0
    blocks_executed = 0
    stack: List[Tuple[str, _Node, int]] = []

    proc_name = program.entry
    proc_nodes = nodes[proc_name]
    node = proc_nodes[program.procedure(proc_name).entry]
    call_idx = 0
    fresh = True

    cond_k, uncond_k, indirect_k = tr.COND, tr.UNCOND, tr.INDIRECT
    call_k, icall_k, ret_k = tr.CALL, tr.ICALL, tr.RET
    step = INSTRUCTION_BYTES

    while True:
        if fresh:
            instructions += node.size
            blocks_executed += 1
            if on_block:
                for cb in on_block:
                    cb(node.start, node.size)
            if block_hook is not None:
                block_hook(proc_name, node.bid)
            fresh = False

        if call_idx < len(node.calls):
            site, callee, chooser = node.calls[call_idx]
            if chooser is not None:
                callee = chooser.choose()
                kind = icall_k
            else:
                kind = call_k
            target = entry_addr[callee]
            event = (kind, site, target, True)
            for cb in emit:
                cb(event)
            events += 1
            stack.append((proc_name, node, call_idx + 1))
            proc_name = callee
            proc_nodes = nodes[proc_name]
            node = proc_nodes[program.procedure(proc_name).entry]
            call_idx = 0
            fresh = True
            if max_events is not None and events >= max_events:
                break
            continue

        kind = node.kind
        if kind is TerminatorKind.COND:
            succ = node.taken_dst if node.behavior.choose() else node.ft_dst
            if profile_hook is not None:
                profile_hook(proc_name, node.bid, succ)
            site = node.term_addr
            if succ == node.taken_target:
                event = (cond_k, site, proc_nodes[succ].start, True)
                for cb in emit:
                    cb(event)
                events += 1
            else:
                event = (cond_k, site, site + step, False)
                for cb in emit:
                    cb(event)
                events += 1
                if node.jump_addr is not None:
                    event = (uncond_k, node.jump_addr, proc_nodes[succ].start, True)
                    for cb in emit:
                        cb(event)
                    events += 1
            node = proc_nodes[succ]
            call_idx = 0
            fresh = True
        elif kind is TerminatorKind.FALLTHROUGH:
            succ = node.ft_dst
            if profile_hook is not None:
                profile_hook(proc_name, node.bid, succ)
            if node.jump_addr is not None:
                event = (uncond_k, node.jump_addr, proc_nodes[succ].start, True)
                for cb in emit:
                    cb(event)
                events += 1
            node = proc_nodes[succ]
            call_idx = 0
            fresh = True
        elif kind is TerminatorKind.UNCOND:
            succ = node.taken_dst
            if profile_hook is not None:
                profile_hook(proc_name, node.bid, succ)
            if not node.branch_removed:
                event = (uncond_k, node.term_addr, proc_nodes[succ].start, True)
                for cb in emit:
                    cb(event)
                events += 1
            node = proc_nodes[succ]
            call_idx = 0
            fresh = True
        elif kind is TerminatorKind.INDIRECT:
            if node.behavior is not None:
                succ = node.indirect_dsts[node.behavior.choose()]
            else:
                succ = node.indirect_dsts[0]
            if profile_hook is not None:
                profile_hook(proc_name, node.bid, succ)
            event = (indirect_k, node.term_addr, proc_nodes[succ].start, True)
            for cb in emit:
                cb(event)
            events += 1
            node = proc_nodes[succ]
            call_idx = 0
            fresh = True
        else:  # RETURN
            if stack:
                ret_proc, ret_node, ret_idx = stack.pop()
                ret_site = ret_node.calls[ret_idx - 1][0]
                event = (ret_k, node.term_addr, ret_site + step, True)
                for cb in emit:
                    cb(event)
                events += 1
                proc_name = ret_proc
                proc_nodes = nodes[proc_name]
                node = ret_node
                call_idx = ret_idx
                fresh = False
            else:
                event = (ret_k, node.term_addr, 0, True)
                for cb in emit:
                    cb(event)
                events += 1
                break

        if max_events is not None and events >= max_events:
            break

    return ExecutionResult(instructions=instructions, events=events, blocks=blocks_executed)
