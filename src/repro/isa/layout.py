"""Layouts: concrete block placements produced by branch alignment.

A :class:`ProcedureLayout` records, for one procedure, the new block order
plus the per-block branch rewrites the layout implies:

* a conditional branch may be *inverted* so its old taken target becomes
  the fall-through;
* a conditional or fall-through block may get an *appended unconditional
  jump* when its fall-through successor is not placed next (for
  conditionals this is the paper's "align neither edge" transformation);
* an unconditional branch is *removed* when its target ends up placed
  immediately after it.

The layout is purely structural — addresses are assigned later by
:mod:`repro.isa.encoder` — and it can always be checked for semantic
preservation against the source CFG (:meth:`ProcedureLayout.check`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..cfg import BlockId, Procedure, Program, TerminatorKind


class LayoutError(ValueError):
    """Raised when a layout does not preserve the CFG's semantics."""


@dataclass(frozen=True)
class BlockPlacement:
    """One block's placement decisions within a procedure layout.

    Attributes:
        bid: The placed block.
        taken_target: For blocks that keep their own branch instruction
            (conditional, or unconditional with ``branch_removed`` False),
            the block id the branch transfers to when taken.  For an
            inverted conditional this is the original fall-through
            successor.  ``None`` for branchless placements.
        jump_target: Target block of an appended unconditional jump, or
            ``None`` when no jump was inserted.
        branch_removed: True when an unconditional branch was deleted
            because its target is placed immediately after the block.
    """

    bid: BlockId
    taken_target: Optional[BlockId] = None
    jump_target: Optional[BlockId] = None
    branch_removed: bool = False


class ProcedureLayout:
    """An ordered placement of every block of one procedure."""

    def __init__(self, procedure: Procedure, placements: Sequence[BlockPlacement]):
        self.procedure = procedure
        self.placements: Tuple[BlockPlacement, ...] = tuple(placements)
        self.position: Dict[BlockId, int] = {
            p.bid: i for i, p in enumerate(self.placements)
        }
        self.check()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_order(
        cls,
        procedure: Procedure,
        order: Sequence[BlockId],
        jump_preference: Optional[Mapping[BlockId, BlockId]] = None,
    ) -> "ProcedureLayout":
        """Derive the minimal branch rewrites implied by a block order.

        ``jump_preference`` says, for a conditional block the alignment
        decided to *seal* ("align neither edge"), which successor must be
        reached through an appended unconditional jump — the cost models
        choose the edge whose prediction profits from travelling via the
        jump, e.g. the hot self-loop edge under the FALLTHROUGH
        architecture.  The preference is honoured even when chain
        concatenation happens to place a successor adjacent, because the
        adjacent-fall-through configuration is exactly what the seal
        decision rejected; the only elision is when the jump's own target
        ends up adjacent, where falling through is equivalent and one
        instruction cheaper.  Conditional blocks without a preference get
        the minimal rewrite their adjacency implies, defaulting to a jump
        to the original fall-through successor when neither side is next.
        """
        prefs = dict(jump_preference or {})
        placements: List[BlockPlacement] = []
        order = list(order)
        for idx, bid in enumerate(order):
            block = procedure.block(bid)
            nxt = order[idx + 1] if idx + 1 < len(order) else None
            kind = block.kind
            if kind is TerminatorKind.FALLTHROUGH:
                succ = procedure.fallthrough_edge(bid).dst  # type: ignore[union-attr]
                if succ == nxt:
                    placements.append(BlockPlacement(bid))
                else:
                    placements.append(BlockPlacement(bid, jump_target=succ))
            elif kind is TerminatorKind.UNCOND:
                target = procedure.taken_edge(bid).dst  # type: ignore[union-attr]
                if target == nxt:
                    placements.append(BlockPlacement(bid, branch_removed=True))
                else:
                    placements.append(BlockPlacement(bid, taken_target=target))
            elif kind is TerminatorKind.COND:
                taken = procedure.taken_edge(bid).dst  # type: ignore[union-attr]
                fall = procedure.fallthrough_edge(bid).dst  # type: ignore[union-attr]
                via_jump = prefs.get(bid)
                if via_jump is not None and via_jump not in (taken, fall):
                    raise LayoutError(
                        f"{procedure.name}: jump preference {via_jump} is "
                        f"not a successor of block {bid}"
                    )
                if via_jump is not None and via_jump != nxt:
                    direct = taken if via_jump == fall else fall
                    placements.append(
                        BlockPlacement(bid, taken_target=direct, jump_target=via_jump)
                    )
                elif nxt == fall:
                    placements.append(BlockPlacement(bid, taken_target=taken))
                elif nxt == taken:
                    placements.append(BlockPlacement(bid, taken_target=fall))
                else:
                    placements.append(
                        BlockPlacement(bid, taken_target=taken, jump_target=fall)
                    )
            else:  # INDIRECT, RETURN — placement never rewrites these
                placements.append(BlockPlacement(bid))
        return cls(procedure, placements)

    @classmethod
    def identity(cls, procedure: Procedure) -> "ProcedureLayout":
        """The original compiler-emitted layout."""
        return cls.from_order(procedure, procedure.original_order)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check(self) -> None:
        """Verify the layout preserves the procedure's control flow."""
        proc = self.procedure
        ids = [p.bid for p in self.placements]
        if sorted(ids) != sorted(proc.blocks):
            missing = sorted(set(proc.blocks) - set(ids))
            extra = sorted(set(ids) - set(proc.blocks))
            duplicated = sorted({bid for bid in ids if ids.count(bid) > 1})
            problems = []
            if missing:
                problems.append(f"missing blocks {missing}")
            if extra:
                problems.append(f"unknown blocks {extra}")
            if duplicated:
                problems.append(f"duplicated blocks {duplicated}")
            raise LayoutError(
                f"{proc.name}: layout is not a permutation of the blocks "
                f"({'; '.join(problems) or 'count mismatch'})"
            )
        if ids[0] != proc.entry:
            raise LayoutError(
                f"{proc.name}: entry block {proc.entry} must be placed "
                f"first, but block {ids[0]} is"
            )
        for idx, placement in enumerate(self.placements):
            block = proc.block(placement.bid)
            nxt = ids[idx + 1] if idx + 1 < len(ids) else None
            kind = block.kind
            if kind is TerminatorKind.FALLTHROUGH:
                succ = proc.fallthrough_edge(block.bid).dst  # type: ignore[union-attr]
                reached = placement.jump_target if placement.jump_target is not None else nxt
                if placement.taken_target is not None or placement.branch_removed:
                    raise LayoutError(
                        f"{proc.name}: bad placement for block {block.bid}: "
                        f"a fall-through block cannot carry a taken target "
                        f"or have its branch removed"
                    )
                if reached != succ:
                    raise LayoutError(
                        f"{proc.name}: block {block.bid} no longer reaches "
                        f"its successor {succ}"
                    )
            elif kind is TerminatorKind.UNCOND:
                target = proc.taken_edge(block.bid).dst  # type: ignore[union-attr]
                if placement.jump_target is not None:
                    raise LayoutError(
                        f"{proc.name}: bad placement for block {block.bid}: "
                        f"an unconditional-branch block cannot take an "
                        f"appended jump (to {placement.jump_target})"
                    )
                if placement.branch_removed:
                    if nxt != target:
                        raise LayoutError(
                            f"{proc.name}: block {block.bid} branch removed but "
                            f"target {target} not adjacent"
                        )
                elif placement.taken_target != target:
                    raise LayoutError(
                        f"{proc.name}: block {block.bid} branch retargeted"
                    )
            elif kind is TerminatorKind.COND:
                taken = proc.taken_edge(block.bid).dst  # type: ignore[union-attr]
                fall = proc.fallthrough_edge(block.bid).dst  # type: ignore[union-attr]
                if placement.branch_removed or placement.taken_target is None:
                    what = (
                        "its branch removed"
                        if placement.branch_removed
                        else "no taken target"
                    )
                    raise LayoutError(
                        f"{proc.name}: bad placement for block {block.bid}: "
                        f"a conditional block cannot have {what}"
                    )
                if placement.taken_target not in (taken, fall):
                    raise LayoutError(
                        f"{proc.name}: block {block.bid} branch retargeted"
                    )
                other = fall if placement.taken_target == taken else taken
                reached = placement.jump_target if placement.jump_target is not None else nxt
                if reached != other:
                    raise LayoutError(
                        f"{proc.name}: block {block.bid} lost successor {other}"
                    )
            else:  # INDIRECT, RETURN
                if (
                    placement.taken_target is not None
                    or placement.jump_target is not None
                    or placement.branch_removed
                ):
                    raise LayoutError(
                        f"{proc.name}: bad placement for block {block.bid}: "
                        f"{kind.value} blocks are never rewritten by layout"
                    )

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------
    def placed_size(self, bid: BlockId) -> int:
        """Instruction count of a block after layout rewrites."""
        placement = self.placements[self.position[bid]]
        block = self.procedure.block(bid)
        size = block.size
        if placement.branch_removed:
            size -= 1
        if placement.jump_target is not None:
            size += 1
        return size

    def total_size(self) -> int:
        """Static instruction count of the laid-out procedure."""
        return sum(self.placed_size(p.bid) for p in self.placements)

    def inverted_conditionals(self) -> List[BlockId]:
        """Conditional blocks whose branch sense was flipped."""
        out = []
        for placement in self.placements:
            block = self.procedure.block(placement.bid)
            if block.kind is not TerminatorKind.COND:
                continue
            original_taken = self.procedure.taken_edge(block.bid).dst  # type: ignore[union-attr]
            if placement.taken_target != original_taken:
                out.append(block.bid)
        return out

    def inserted_jumps(self) -> List[Tuple[BlockId, BlockId]]:
        """(block, jump target) pairs for every appended jump."""
        return [
            (p.bid, p.jump_target)
            for p in self.placements
            if p.jump_target is not None
        ]

    def removed_branches(self) -> List[BlockId]:
        """Unconditional-branch blocks whose branch was deleted."""
        return [p.bid for p in self.placements if p.branch_removed]


class ProgramLayout:
    """A layout for every procedure of a program (procedure order fixed)."""

    def __init__(self, program: Program, layouts: Mapping[str, ProcedureLayout]):
        self.program = program
        missing = [name for name in program.order if name not in layouts]
        if missing:
            raise LayoutError(f"missing layouts for procedures {missing}")
        self.layouts: Dict[str, ProcedureLayout] = {
            name: layouts[name] for name in program.order
        }

    @classmethod
    def identity(cls, program: Program) -> "ProgramLayout":
        """The original layout of every procedure."""
        return cls(
            program,
            {proc.name: ProcedureLayout.identity(proc) for proc in program},
        )

    def __getitem__(self, name: str) -> ProcedureLayout:
        return self.layouts[name]

    def __iter__(self) -> Iterable[ProcedureLayout]:
        for name in self.program.order:
            yield self.layouts[name]

    def total_size(self) -> int:
        """Static instruction count of the laid-out program."""
        return sum(layout.total_size() for layout in self)
