"""Layout persistence: save and reapply alignment decisions as JSON.

OM separates analysis from rewriting: the alignment pass decides a block
order and the link step applies it.  This module captures a
:class:`ProgramLayout` — per-procedure block order, branch senses and
jump placements — in a versioned JSON "alignment map" that can be
inspected, diffed, stored next to a profile, and re-applied to a freshly
generated program.  Loading re-validates the layout against the target
program, so a stale map for a changed CFG fails loudly instead of
miscompiling.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..atomicio import atomic_write_text
from ..cfg import Program
from .layout import BlockPlacement, LayoutError, ProcedureLayout, ProgramLayout

FORMAT_VERSION = 1


class LayoutFormatError(ValueError):
    """Raised when an alignment map is malformed or incompatible."""


def layout_to_dict(layout: ProgramLayout) -> dict:
    """Serialise a program layout to JSON-compatible data."""
    procedures = {}
    for proc_layout in layout:
        procedures[proc_layout.procedure.name] = [
            {
                "bid": p.bid,
                "taken": p.taken_target,
                "jump": p.jump_target,
                "removed": p.branch_removed,
            }
            for p in proc_layout.placements
        ]
    return {
        "format": "repro-alignment-map",
        "version": FORMAT_VERSION,
        "procedures": procedures,
    }


def layout_from_dict(data: dict, program: Program) -> ProgramLayout:
    """Rebuild (and re-validate) a layout for ``program``."""
    if not isinstance(data, dict) or data.get("format") != "repro-alignment-map":
        raise LayoutFormatError("not a repro alignment map")
    if data.get("version") != FORMAT_VERSION:
        raise LayoutFormatError(
            f"unsupported version {data.get('version')!r} (expected {FORMAT_VERSION})"
        )
    procedures = data.get("procedures")
    if not isinstance(procedures, dict):
        raise LayoutFormatError("missing procedures mapping")
    layouts = {}
    for name in program.order:
        if name not in procedures:
            raise LayoutFormatError(f"map lacks procedure {name!r}")
        placements = []
        for entry in procedures[name]:
            try:
                placements.append(
                    BlockPlacement(
                        bid=entry["bid"],
                        taken_target=entry["taken"],
                        jump_target=entry["jump"],
                        branch_removed=bool(entry["removed"]),
                    )
                )
            except (KeyError, TypeError) as exc:
                raise LayoutFormatError(f"bad placement entry {entry!r}") from exc
        try:
            layouts[name] = ProcedureLayout(program.procedure(name), placements)
        except LayoutError as exc:
            raise LayoutFormatError(
                f"alignment map does not fit procedure {name!r}: {exc}"
            ) from exc
    return ProgramLayout(program, layouts)


def save_layout(layout: ProgramLayout, path: Union[str, Path]) -> None:
    """Write an alignment map to ``path`` (atomically — see atomicio)."""
    atomic_write_text(path, json.dumps(layout_to_dict(layout), indent=1))


def load_layout(path: Union[str, Path], program: Program) -> ProgramLayout:
    """Read an alignment map and validate it against ``program``."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise LayoutFormatError(f"invalid JSON in {path}: {exc}") from exc
    return layout_from_dict(data, program)
