"""Synthetic ISA, layout engine and address encoder."""

from .diff import ProcedureDiff, diff_layouts, diff_procedure_layouts, render_diff
from .encoder import INSTRUCTION_BYTES, LinkedBlock, LinkedProgram, TEXT_BASE, link, link_identity
from .instructions import Instruction, Opcode
from .layout import BlockPlacement, LayoutError, ProcedureLayout, ProgramLayout
from .serialize import (
    LayoutFormatError,
    layout_from_dict,
    layout_to_dict,
    load_layout,
    save_layout,
)

__all__ = [
    "BlockPlacement",
    "INSTRUCTION_BYTES",
    "Instruction",
    "LayoutError",
    "LayoutFormatError",
    "LinkedBlock",
    "LinkedProgram",
    "Opcode",
    "ProcedureDiff",
    "ProcedureLayout",
    "ProgramLayout",
    "TEXT_BASE",
    "diff_layouts",
    "diff_procedure_layouts",
    "layout_from_dict",
    "layout_to_dict",
    "link",
    "link_identity",
    "load_layout",
    "render_diff",
    "save_layout",
]
