"""The synthetic RISC-like instruction set used by the layout engine.

Only the properties that matter to branch alignment are modelled: every
instruction is 4 bytes, and an instruction is either a straight-line
operation or one of the five control-transfer kinds the paper traces
(conditional branch, unconditional branch, indirect jump, call, return).
The paper's binary rewriter (OM) works at this level of abstraction too —
it permutes blocks, flips branch senses and inserts or deletes
unconditional branches without understanding the ALU operations between
them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

#: Size of every instruction, in bytes (Alpha AXP fixed-width encoding).
INSTRUCTION_BYTES = 4


class Opcode(enum.Enum):
    """Instruction classes relevant to branch-cost simulation."""

    OP = "op"  # any straight-line operation
    COND_BRANCH = "cbr"
    UNCOND_BRANCH = "br"
    INDIRECT_JUMP = "ijmp"
    CALL = "call"
    INDIRECT_CALL = "icall"
    RETURN = "ret"

    @property
    def is_control(self) -> bool:
        return self is not Opcode.OP


@dataclass(frozen=True)
class Instruction:
    """A decoded instruction at a fixed address.

    ``target`` is the static target address for direct control transfers
    (conditional/unconditional branches and direct calls); indirect jumps,
    indirect calls and returns have no static target.
    """

    address: int
    opcode: Opcode
    target: Optional[int] = None
    comment: str = ""

    def __post_init__(self) -> None:
        if self.address % INSTRUCTION_BYTES:
            raise ValueError(f"misaligned instruction address {self.address:#x}")
        direct = self.opcode in (Opcode.COND_BRANCH, Opcode.UNCOND_BRANCH, Opcode.CALL)
        if direct and self.target is None:
            raise ValueError(f"{self.opcode.value} requires a target")
        if not direct and self.opcode is not Opcode.OP and self.target is not None:
            raise ValueError(f"{self.opcode.value} cannot carry a static target")

    @property
    def is_backward(self) -> bool:
        """True if this is a direct branch to an earlier address.

        This is the relation the BT/FNT (backward-taken, forward-not-taken)
        static predictor keys on.
        """
        return self.target is not None and self.target < self.address

    def render(self) -> str:
        """A one-line human-readable disassembly."""
        if self.opcode is Opcode.OP:
            body = "op"
        elif self.target is not None:
            body = f"{self.opcode.value} {self.target:#x}"
        else:
            body = self.opcode.value
        suffix = f"  ; {self.comment}" if self.comment else ""
        return f"{self.address:#08x}: {body}{suffix}"
