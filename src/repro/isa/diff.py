"""Layout diffing: what exactly did the aligner change?

OM users read rewrite logs to trust a binary rewriter; this module gives
the reproduction the same audit trail.  ``diff_layouts`` compares two
layouts of one program and reports, per procedure: blocks that moved,
conditionals whose sense flipped, unconditional branches inserted or
removed, and the static size delta — with profile weights attached so a
reader can see *which* of the changes carry execution weight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..cfg import BlockId, TerminatorKind
from ..profiling.edge_profile import EdgeProfile
from .layout import ProcedureLayout, ProgramLayout


@dataclass
class ProcedureDiff:
    """All layout changes within one procedure."""

    name: str
    moved_blocks: List[BlockId] = field(default_factory=list)
    inverted: List[BlockId] = field(default_factory=list)
    jumps_added: List[Tuple[BlockId, BlockId]] = field(default_factory=list)
    jumps_removed: List[Tuple[BlockId, BlockId]] = field(default_factory=list)
    branches_removed: List[BlockId] = field(default_factory=list)
    branches_restored: List[BlockId] = field(default_factory=list)
    size_before: int = 0
    size_after: int = 0

    @property
    def changed(self) -> bool:
        return bool(
            self.moved_blocks or self.inverted or self.jumps_added
            or self.jumps_removed or self.branches_removed or self.branches_restored
        )

    @property
    def size_delta(self) -> int:
        return self.size_after - self.size_before


def diff_procedure_layouts(
    before: ProcedureLayout, after: ProcedureLayout
) -> ProcedureDiff:
    """Structural diff of two layouts of the same procedure."""
    if before.procedure is not after.procedure and (
        before.procedure.name != after.procedure.name
        or set(before.procedure.blocks) != set(after.procedure.blocks)
    ):
        raise ValueError("layouts describe different procedures")
    proc = before.procedure
    diff = ProcedureDiff(
        name=proc.name,
        size_before=before.total_size(),
        size_after=after.total_size(),
    )
    order_before = [p.bid for p in before.placements]
    order_after = [p.bid for p in after.placements]
    pos_before = {bid: i for i, bid in enumerate(order_before)}
    # A block "moved" when its predecessor-in-order changed.
    for idx, bid in enumerate(order_after):
        prev_after = order_after[idx - 1] if idx else None
        prev_before = (
            order_before[pos_before[bid] - 1] if pos_before[bid] else None
        )
        if prev_after != prev_before:
            diff.moved_blocks.append(bid)

    jumps_before = dict(before.inserted_jumps())
    jumps_after = dict(after.inserted_jumps())
    for bid, target in sorted(jumps_after.items()):
        if jumps_before.get(bid) != target:
            diff.jumps_added.append((bid, target))
    for bid, target in sorted(jumps_before.items()):
        if jumps_after.get(bid) != target:
            diff.jumps_removed.append((bid, target))

    removed_before = set(before.removed_branches())
    removed_after = set(after.removed_branches())
    diff.branches_removed = sorted(removed_after - removed_before)
    diff.branches_restored = sorted(removed_before - removed_after)

    inverted_before = set(before.inverted_conditionals())
    inverted_after = set(after.inverted_conditionals())
    diff.inverted = sorted(inverted_before ^ inverted_after)
    return diff


def diff_layouts(
    before: ProgramLayout, after: ProgramLayout
) -> List[ProcedureDiff]:
    """Per-procedure diffs for two layouts of the same program."""
    if before.program.order != after.program.order:
        raise ValueError("layouts describe different programs")
    return [
        diff_procedure_layouts(before[name], after[name])
        for name in before.program.order
    ]


def render_diff(
    diffs: Sequence[ProcedureDiff],
    profile: Optional[EdgeProfile] = None,
    show_unchanged: bool = False,
) -> str:
    """Render a human-readable transformation report."""
    lines: List[str] = []
    for diff in diffs:
        if not diff.changed and not show_unchanged:
            continue
        lines.append(f"{diff.name}: "
                     f"{len(diff.moved_blocks)} blocks moved, "
                     f"size {diff.size_before} -> {diff.size_after} "
                     f"({diff.size_delta:+d})")
        for bid in diff.inverted:
            lines.append(f"  invert conditional @ block {bid}"
                         + _weight_note(profile, diff.name, bid))
        for bid, target in diff.jumps_added:
            lines.append(f"  insert jump block {bid} -> {target}"
                         + _weight_note(profile, diff.name, bid, target))
        for bid, target in diff.jumps_removed:
            lines.append(f"  drop jump block {bid} -> {target}")
        for bid in diff.branches_removed:
            lines.append(f"  delete unconditional branch @ block {bid}")
        for bid in diff.branches_restored:
            lines.append(f"  restore unconditional branch @ block {bid}")
    if not lines:
        return "layouts are identical"
    return "\n".join(lines)


def _weight_note(
    profile: Optional[EdgeProfile],
    proc_name: str,
    src: BlockId,
    dst: Optional[BlockId] = None,
) -> str:
    if profile is None:
        return ""
    if dst is not None:
        weight = profile.weight(proc_name, src, dst)
    else:
        weight = sum(
            count for (s, _d), count in profile.proc_edges(proc_name).items()
            if s == src
        )
    return f"  [{weight:,} execs]" if weight else ""
