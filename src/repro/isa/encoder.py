"""Address assignment: turning a layout into a linked binary image.

The encoder walks procedures in link order (never reordered, matching the
paper) and the blocks of each procedure in layout order, assigning 4-byte
addresses to every instruction.  The result, a :class:`LinkedProgram`,
gives each branch a concrete *site* address and *target* address — the
inputs the BT/FNT direction test, the PHT/gshare index and the BTB tags
all consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..cfg import BlockId, Program, TerminatorKind
from .instructions import INSTRUCTION_BYTES, Instruction, Opcode
from .layout import BlockPlacement, ProgramLayout

#: Base address of the text segment (arbitrary, Alpha-flavoured).
TEXT_BASE = 0x120000000


@dataclass(frozen=True)
class LinkedBlock:
    """A placed block with concrete addresses.

    Attributes:
        bid: Block id within its procedure.
        start: Address of the block's first instruction.
        size: Placed instruction count (after branch insertion/removal).
        term_address: Address of the block's own terminator branch, or
            ``None`` when the block has none (fall-through blocks,
            removed unconditional branches).
        jump_address: Address of the appended unconditional jump, if any.
        placement: The structural placement this block realises.
    """

    bid: BlockId
    start: int
    size: int
    term_address: Optional[int]
    jump_address: Optional[int]
    placement: BlockPlacement

    @property
    def end(self) -> int:
        """Address one past the block's last instruction."""
        return self.start + self.size * INSTRUCTION_BYTES

    def call_address(self, offset: int) -> int:
        """Address of the call instruction at straight-line ``offset``."""
        return self.start + offset * INSTRUCTION_BYTES


class LinkedProgram:
    """A fully addressed binary image of a program under a given layout."""

    def __init__(self, layout: ProgramLayout):
        self.layout = layout
        self.program = layout.program
        self.blocks: Dict[str, Dict[BlockId, LinkedBlock]] = {}
        self.proc_start: Dict[str, int] = {}
        address = TEXT_BASE
        for proc in self.program:
            proc_layout = layout[proc.name]
            linked: Dict[BlockId, LinkedBlock] = {}
            self.proc_start[proc.name] = address
            for placement in proc_layout.placements:
                block = proc.block(placement.bid)
                size = proc_layout.placed_size(placement.bid)
                straight = block.straightline_size
                term_addr: Optional[int] = None
                jump_addr: Optional[int] = None
                cursor = address + straight * INSTRUCTION_BYTES
                keeps_terminator = (
                    block.kind.has_branch_instruction and not placement.branch_removed
                )
                if keeps_terminator:
                    term_addr = cursor
                    cursor += INSTRUCTION_BYTES
                if placement.jump_target is not None:
                    jump_addr = cursor
                    cursor += INSTRUCTION_BYTES
                linked[placement.bid] = LinkedBlock(
                    bid=placement.bid,
                    start=address,
                    size=size,
                    term_address=term_addr,
                    jump_address=jump_addr,
                    placement=placement,
                )
                address += size * INSTRUCTION_BYTES
            self.blocks[proc.name] = linked
        self.text_end = address

    # ------------------------------------------------------------------
    def block(self, proc_name: str, bid: BlockId) -> LinkedBlock:
        """The addressed block ``bid`` of procedure ``proc_name``."""
        return self.blocks[proc_name][bid]

    def block_address(self, proc_name: str, bid: BlockId) -> int:
        """Start address of a block."""
        return self.blocks[proc_name][bid].start

    def entry_address(self, proc_name: str) -> int:
        """Address of a procedure's entry point."""
        proc = self.program.procedure(proc_name)
        return self.block_address(proc_name, proc.entry)

    def total_size(self) -> int:
        """Static instruction count of the linked image."""
        return (self.text_end - TEXT_BASE) // INSTRUCTION_BYTES

    # ------------------------------------------------------------------
    def disassemble(self, proc_name: Optional[str] = None) -> List[Instruction]:
        """Produce a readable instruction listing of the linked image.

        Intended for examples, debugging and golden tests; the simulator
        itself never materialises instruction objects.
        """
        names = [proc_name] if proc_name else list(self.program.order)
        out: List[Instruction] = []
        for name in names:
            proc = self.program.procedure(name)
            proc_layout = self.layout[name]
            for placement in proc_layout.placements:
                block = proc.block(placement.bid)
                linked = self.blocks[name][placement.bid]
                call_by_offset = {c.offset: c for c in block.calls}
                for offset in range(block.straightline_size):
                    addr = linked.start + offset * INSTRUCTION_BYTES
                    call = call_by_offset.get(offset)
                    if call is None:
                        out.append(Instruction(addr, Opcode.OP))
                    elif call.callee is not None:
                        out.append(
                            Instruction(
                                addr,
                                Opcode.CALL,
                                target=self.entry_address(call.callee),
                                comment=f"call {call.callee}",
                            )
                        )
                    else:
                        out.append(
                            Instruction(addr, Opcode.INDIRECT_CALL, comment="icall")
                        )
                if linked.term_address is not None:
                    out.append(self._terminator(name, block.kind, linked))
                if linked.jump_address is not None:
                    target = self.block_address(name, placement.jump_target)
                    out.append(
                        Instruction(
                            linked.jump_address,
                            Opcode.UNCOND_BRANCH,
                            target=target,
                            comment="inserted by alignment",
                        )
                    )
        return out

    def _terminator(self, proc_name: str, kind: TerminatorKind, linked: LinkedBlock) -> Instruction:
        assert linked.term_address is not None
        if kind is TerminatorKind.COND:
            target = self.block_address(proc_name, linked.placement.taken_target)
            return Instruction(linked.term_address, Opcode.COND_BRANCH, target=target)
        if kind is TerminatorKind.UNCOND:
            target = self.block_address(proc_name, linked.placement.taken_target)
            return Instruction(linked.term_address, Opcode.UNCOND_BRANCH, target=target)
        if kind is TerminatorKind.INDIRECT:
            return Instruction(linked.term_address, Opcode.INDIRECT_JUMP)
        if kind is TerminatorKind.RETURN:
            return Instruction(linked.term_address, Opcode.RETURN)
        raise AssertionError(f"no terminator for {kind}")


def link(layout: ProgramLayout) -> LinkedProgram:
    """Assign addresses to a layout, producing a linked binary image."""
    return LinkedProgram(layout)


def link_identity(program: Program) -> LinkedProgram:
    """Link a program in its original layout."""
    return LinkedProgram(ProgramLayout.identity(program))
