"""The Pettis–Hansen bottom-up ("greedy") branch alignment algorithm.

From section 4 of the paper:

    "The edge S -> D ... with the largest weight is selected.  The
    algorithm then attempts to position node D as the fall-through of
    node S.  If S does not already have a fall-through basic block, and D
    does not already have a head, then these two basic blocks are
    combined into a chain.  Otherwise, these blocks cannot be linked. ...
    This is repeated until all edges have been examined and chains can no
    longer be merged."

The Greedy algorithm is architecture-blind: it never consults a cost
model.  Pettis and Hansen aimed it at the BT/FNT architecture and ordered
chains with a precedence relation; the paper found ordering chains from
most to least executed performs slightly better, and used that ordering
for every simulation except the BT/FNT one — this class follows suit via
``chain_order``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..cfg import BlockId, Procedure
from ..profiling.edge_profile import EdgeProfile
from .align import Aligner, greedy_link_pass
from .chains import ChainSet


class GreedyAligner(Aligner):
    """Pettis–Hansen bottom-up chain merging."""

    name = "greedy"

    def __init__(self, chain_order: str = "weight"):
        self.chain_order = chain_order

    def build_chains(
        self, proc: Procedure, profile: EdgeProfile
    ) -> Tuple[ChainSet, Dict[BlockId, BlockId]]:
        """Merge chains along edges in descending weight order."""
        chains = ChainSet(proc)
        greedy_link_pass(chains, proc, profile, min_weight=0)
        return chains, {}
