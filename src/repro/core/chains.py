"""Pettis–Hansen chains: sequences of blocks threaded by fall-through links.

A *chain* is a contiguous run of basic blocks; linking the edge S -> D
makes D the layout fall-through of S, merging D's chain onto S's.  The
structure enforces the three feasibility rules every alignment algorithm
shares:

* a block has at most one layout successor and one layout predecessor;
* linking must not close a cycle (chains are simple paths);
* the procedure entry block can never acquire a predecessor, because the
  entry must remain the first block of the procedure.

A block may also be *sealed*: the Cost and TryN algorithms seal a block
when the cost model prefers ending it with an (possibly appended)
unconditional jump over giving it any fall-through successor — the
"align neither edge" transformation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..cfg import BlockId, Procedure


class ChainSet:
    """Disjoint chains over the blocks of one procedure."""

    def __init__(self, proc: Procedure):
        self.proc = proc
        self.entry = proc.entry
        self.succ: Dict[BlockId, Optional[BlockId]] = {b: None for b in proc.blocks}
        self.pred: Dict[BlockId, Optional[BlockId]] = {b: None for b in proc.blocks}
        self.sealed: Set[BlockId] = set()
        # Union-find over chain membership, with head/tail per root.
        self._parent: Dict[BlockId, BlockId] = {b: b for b in proc.blocks}
        self._head: Dict[BlockId, BlockId] = {b: b for b in proc.blocks}
        self._tail: Dict[BlockId, BlockId] = {b: b for b in proc.blocks}

    # ------------------------------------------------------------------
    def _find(self, bid: BlockId) -> BlockId:
        root = bid
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[bid] != root:
            self._parent[bid], bid = root, self._parent[bid]
        return root

    # ------------------------------------------------------------------
    def can_link(self, src: BlockId, dst: BlockId) -> bool:
        """True if dst may become the layout fall-through of src."""
        if src == dst or dst == self.entry:
            return False
        if src in self.sealed:
            return False
        if self.succ[src] is not None or self.pred[dst] is not None:
            return False
        if not self.proc.block(src).kind.alignable:
            return False
        return self._find(src) != self._find(dst)

    def link(self, src: BlockId, dst: BlockId) -> None:
        """Make dst the layout fall-through of src (must be linkable)."""
        if not self.can_link(src, dst):
            raise ValueError(f"cannot link {src} -> {dst}")
        self.succ[src] = dst
        self.pred[dst] = src
        src_root, dst_root = self._find(src), self._find(dst)
        head = self._head[src_root]
        tail = self._tail[dst_root]
        self._parent[dst_root] = src_root
        self._head[src_root] = head
        self._tail[src_root] = tail

    def unlink(self, src: BlockId) -> None:
        """Undo a link (used by the TryN backtracking search).

        Splits src's chain after src; both halves keep correct head/tail
        records.  Union-find parents are rebuilt for the two fragments.
        """
        dst = self.succ[src]
        if dst is None:
            raise ValueError(f"{src} has no layout successor to unlink")
        self.succ[src] = None
        self.pred[dst] = None
        # Rebuild the two fragments from scratch; fragments are short in
        # practice, and correctness beats cleverness here.
        for start in (self._chain_start(src), dst):
            bid = start
            prev: Optional[BlockId] = None
            while bid is not None:
                self._parent[bid] = start
                prev = bid
                bid = self.succ[bid]
            self._head[start] = start
            self._tail[start] = prev if prev is not None else start

    def _chain_start(self, bid: BlockId) -> BlockId:
        while self.pred[bid] is not None:
            bid = self.pred[bid]
        return bid

    # ------------------------------------------------------------------
    def seal(self, bid: BlockId) -> None:
        """Forbid the block from ever getting a layout successor."""
        if self.succ[bid] is not None:
            raise ValueError(f"cannot seal {bid}: it already has a successor")
        self.sealed.add(bid)

    def unseal(self, bid: BlockId) -> None:
        """Allow a previously sealed block to take a successor again."""
        self.sealed.discard(bid)

    # ------------------------------------------------------------------
    def chain_of(self, bid: BlockId) -> List[BlockId]:
        """The full chain containing ``bid``, head to tail."""
        out = []
        cur: Optional[BlockId] = self._chain_start(bid)
        while cur is not None:
            out.append(cur)
            cur = self.succ[cur]
        return out

    def chains(self) -> List[List[BlockId]]:
        """All chains, each listed head to tail, in head-id order."""
        heads = [b for b in self.proc.blocks if self.pred[b] is None]
        heads.sort()
        return [self.chain_of(h) for h in heads]

    def check(self) -> None:
        """Verify internal consistency (used by property tests)."""
        seen: Set[BlockId] = set()
        for chain in self.chains():
            for bid in chain:
                if bid in seen:
                    raise AssertionError(f"block {bid} appears in two chains")
                seen.add(bid)
        if seen != set(self.proc.blocks):
            raise AssertionError("chains do not cover all blocks")
        if self.pred[self.entry] is not None:
            raise AssertionError("entry block acquired a predecessor")
