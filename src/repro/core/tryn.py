"""The Try15 branch alignment heuristic (section 4 of the paper).

Exhaustive search over all block alignments is infeasible for procedures
with hundreds of blocks, so the paper "select[s] the 15 most frequently
executed edges and attempt[s] all possible alignments for these nodes.  We
then select the next 15 edges, and so on."  Per node the possibilities are
the same as the Cost algorithm's: each successor of a conditional tried as
the fall-through, or neither (inserting an unconditional jump); single-exit
blocks tried as fall-through or jump-terminated.

The combinatorial search is a depth-first branch-and-bound over the window
nodes: configurations are explored cheapest-first, tentative chain links
enforce structural feasibility (one fall-through predecessor per block, no
chain cycles), and a suffix lower bound prunes hopeless prefixes.  A state
cap keeps the worst case bounded; because options are tried cheapest-first
the first completed assignment is exactly the greedy solution, so the cap
degrades gracefully.  The paper notes it "only examined edges that were
executed more than once", the default ``min_weight`` here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..cfg import BlockId, Procedure, TerminatorKind
from ..profiling.edge_profile import EdgeProfile
from .align import Aligner, greedy_link_pass
from .chains import ChainSet
from .cost import AlignmentOption, block_options
from .costmodel import ArchModel


class _SearchBudget(Exception):
    """Raised internally when the state cap is exhausted."""


class TryNAligner(Aligner):
    """Windowed exhaustive alignment search ("Try15" with window=15)."""

    def __init__(
        self,
        model: ArchModel,
        window: int = 15,
        min_weight: int = 2,
        max_states: int = 100_000,
        chain_order: str = "weight",
        refine_model: "ArchModel" = None,
    ):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.model = model
        self.window = window
        self.min_weight = min_weight
        self.max_states = max_states
        self.chain_order = chain_order
        self.refine_model = refine_model
        self.name = f"try{window}"

    @classmethod
    def for_architecture(
        cls,
        arch: str,
        window: int = 15,
        min_weight: int = 2,
        max_states: int = 100_000,
    ) -> "TryNAligner":
        """The paper-informed TryN configuration for one architecture.

        Most architectures search with their own cost model.  BT/FNT is
        the exception: chain formation cannot know final branch directions
        ("it is not known where the taken branch will be located in the
        final procedure until the chains are formed and laid out"), so the
        search assumes the majority direction is achievable — the LIKELY
        cost function — and the position-exact refinement pass then
        applies true BT/FNT costs.  With highest-executed-first chain
        ordering, hot taken targets usually do land backward, which is
        exactly why the paper found that ordering competitive for BT/FNT.
        """
        from .costmodel import make_model

        if arch == "btfnt":
            return cls(
                make_model("likely"),
                window=window,
                min_weight=min_weight,
                max_states=max_states,
                refine_model=make_model("btfnt"),
            )
        return cls(
            make_model(arch), window=window, min_weight=min_weight, max_states=max_states
        )

    # ------------------------------------------------------------------
    def build_chains(
        self, proc: Procedure, profile: EdgeProfile
    ) -> Tuple[ChainSet, Dict[BlockId, BlockId]]:
        """Window the hot edges and search each window exhaustively."""
        chains = ChainSet(proc)
        retreating = proc.cyclic_edge_pairs()
        jump_prefs: Dict[BlockId, BlockId] = {}
        decided: Set[BlockId] = set()

        edges = profile.sorted_edges(proc, min_weight=self.min_weight)
        index = 0
        while index < len(edges):
            nodes: List[BlockId] = []
            consumed = 0
            while index < len(edges) and consumed < self.window:
                (src, _dst), _w = edges[index]
                index += 1
                if src in decided or src in nodes:
                    continue
                if not proc.block(src).kind.alignable:
                    continue
                nodes.append(src)
                consumed += 1
            if not nodes:
                continue
            assignment = self._search_window(proc, nodes, profile, retreating, chains)
            for src, option in assignment:
                if option.kind == "link":
                    assert option.target is not None
                    chains.link(src, option.target)
                else:
                    chains.seal(src)
                    if (
                        proc.block(src).kind is TerminatorKind.COND
                        and option.jump is not None
                    ):
                        jump_prefs[src] = option.jump
                decided.add(src)

        greedy_link_pass(chains, proc, profile, min_weight=0)
        return chains, jump_prefs

    # ------------------------------------------------------------------
    def _search_window(
        self,
        proc: Procedure,
        nodes: List[BlockId],
        profile: EdgeProfile,
        retreating: Set[Tuple[BlockId, BlockId]],
        chains: ChainSet,
    ) -> List[Tuple[BlockId, AlignmentOption]]:
        """Branch-and-bound over all configurations of the window nodes."""
        per_node: List[List[AlignmentOption]] = [
            block_options(proc, bid, profile, self.model, retreating, chains)
            for bid in nodes
        ]
        # Suffix lower bounds: the cheapest conceivable cost of nodes i..end.
        suffix = [0.0] * (len(nodes) + 1)
        for i in range(len(nodes) - 1, -1, -1):
            cheapest = min(o.cost for o in per_node[i]) if per_node[i] else 0.0
            suffix[i] = suffix[i + 1] + cheapest

        best_cost = [float("inf")]
        best_assign: List[Optional[List[AlignmentOption]]] = [None]
        current: List[AlignmentOption] = []
        states = [0]

        def dfs(idx: int, acc: float) -> None:
            states[0] += 1
            if states[0] > self.max_states:
                raise _SearchBudget
            if acc + suffix[idx] >= best_cost[0]:
                return
            if idx == len(nodes):
                best_cost[0] = acc
                best_assign[0] = list(current)
                return
            bid = nodes[idx]
            for option in per_node[idx]:
                if option.kind == "link":
                    assert option.target is not None
                    if not chains.can_link(bid, option.target):
                        continue
                    chains.link(bid, option.target)
                    current.append(option)
                    try:
                        dfs(idx + 1, acc + option.cost)
                    finally:
                        current.pop()
                        chains.unlink(bid)
                else:
                    current.append(option)
                    try:
                        dfs(idx + 1, acc + option.cost)
                    finally:
                        current.pop()

        try:
            dfs(0, 0.0)
        except _SearchBudget:
            pass
        assign = best_assign[0]
        if assign is None:
            # Degenerate: even the first descent exceeded the cap.  Fall
            # back to each node's cheapest currently-feasible option.
            out: List[Tuple[BlockId, AlignmentOption]] = []
            for bid in nodes:
                options = block_options(
                    proc, bid, profile, self.model, retreating, chains
                )
                for option in options:
                    if option.kind == "link":
                        assert option.target is not None
                        if chains.can_link(bid, option.target):
                            chains.link(bid, option.target)
                            out.append((bid, option))
                            break
                    else:
                        out.append((bid, option))
                        break
            for bid, option in out:
                if option.kind == "link":
                    chains.unlink(bid)
            return out
        return list(zip(nodes, assign))
