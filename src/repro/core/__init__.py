"""The paper's contribution: branch alignment algorithms and cost models."""

from .align import Aligner, OriginalAligner, align_program
from .chains import ChainSet
from .cost import AlignmentOption, CostAligner, block_options
from .exhaustive import ExhaustiveAligner
from .costmodel import (
    ArchModel,
    BranchCosts,
    BTBModel,
    BTFNTModel,
    DEFAULT_COSTS,
    FallthroughModel,
    LikelyModel,
    MODELS,
    PHTModel,
    make_model,
)
from .greedy import GreedyAligner
from .layout_order import order_chains
from .refine import refine_senses
from .trace_packing import TraceAligner
from .tryn import TryNAligner

__all__ = [
    "Aligner",
    "AlignmentOption",
    "ArchModel",
    "BTBModel",
    "BTFNTModel",
    "BranchCosts",
    "ChainSet",
    "CostAligner",
    "DEFAULT_COSTS",
    "ExhaustiveAligner",
    "FallthroughModel",
    "GreedyAligner",
    "LikelyModel",
    "MODELS",
    "OriginalAligner",
    "PHTModel",
    "TraceAligner",
    "TryNAligner",
    "align_program",
    "block_options",
    "make_model",
    "order_chains",
    "refine_senses",
]
