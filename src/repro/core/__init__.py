"""The paper's contribution: branch alignment algorithms and cost models."""

from .align import Aligner, OriginalAligner, align_program
from .chains import ChainSet
from .cost import AlignmentOption, CostAligner, block_options
from .disptree import DispTreeAligner
from .exhaustive import ExhaustiveAligner
from .exttsp import ExtTSPAligner, jump_score
from .costmodel import (
    ArchModel,
    BranchCosts,
    BTBModel,
    BTFNTModel,
    DEFAULT_COSTS,
    FallthroughModel,
    LikelyModel,
    MODELS,
    PHTModel,
    make_model,
)
from .greedy import GreedyAligner
from .layout_order import order_chains
from .refine import refine_senses
from .registry import (
    ALIGNER_KEYS,
    AlignerPlan,
    AlignerSpec,
    AlignerVariant,
    PlanRequest,
    TRY_MODEL_ARCHS,
    aligner_names,
    get_spec,
    make_aligner,
    plan_algorithms,
    register_aligner,
    unregister_aligner,
)
from .trace_packing import TraceAligner
from .tryn import TryNAligner

__all__ = [
    "ALIGNER_KEYS",
    "Aligner",
    "AlignerPlan",
    "AlignerSpec",
    "AlignerVariant",
    "AlignmentOption",
    "ArchModel",
    "BTBModel",
    "BTFNTModel",
    "BranchCosts",
    "ChainSet",
    "CostAligner",
    "DEFAULT_COSTS",
    "DispTreeAligner",
    "ExhaustiveAligner",
    "ExtTSPAligner",
    "FallthroughModel",
    "GreedyAligner",
    "LikelyModel",
    "MODELS",
    "OriginalAligner",
    "PHTModel",
    "PlanRequest",
    "TRY_MODEL_ARCHS",
    "TraceAligner",
    "TryNAligner",
    "align_program",
    "aligner_names",
    "block_options",
    "get_spec",
    "jump_score",
    "make_aligner",
    "make_model",
    "order_chains",
    "plan_algorithms",
    "refine_senses",
    "register_aligner",
    "unregister_aligner",
]
