"""Exhaustive minimal-cost alignment for small procedures.

Section 4: "We briefly considered using the cost model to assess the cost
of every possible basic block alignment using an exhaustive search and
selecting the minimal cost ordering.  In practice, this sounds expensive,
but in the common case procedures contain 5-15 basic blocks.  However,
most programs have procedures containing hundreds of blocks, making
exhaustive search impossible for those procedures."

This aligner implements that rejected-but-instructive baseline: it
enumerates every block permutation (entry fixed first), applies the
position-exact sense refinement to each, and keeps the cheapest under the
architecture cost model.  It is exponential — procedures above
``max_blocks`` fall back to a TryN search — but it gives the test suite a
provably optimal reference against which the heuristics' quality is
measured (TryN should land within a few percent on small CFGs).
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, Optional, Tuple

from ..cfg import BlockId, Procedure, TerminatorKind
from ..isa.layout import ProcedureLayout
from ..profiling.edge_profile import EdgeProfile
from .align import Aligner
from .chains import ChainSet
from .costmodel import ArchModel
from .refine import refine_senses
from .tryn import TryNAligner


class ExhaustiveAligner(Aligner):
    """Minimal-cost alignment by enumerating all block orders.

    Cost is evaluated with the same position-based accounting the
    refinement pass uses (identical to ``ArchModel.procedure_cost`` on the
    linked binary), so the returned layout is optimal for the model among
    all (order, sense, jump) combinations.
    """

    name = "exhaustive"

    def __init__(self, model: ArchModel, max_blocks: int = 8, window: int = 15):
        self.model = model
        self.max_blocks = max_blocks
        self._fallback = TryNAligner.for_architecture(
            model.name if model.name != "abstract" else "likely", window=window
        )

    def build_chains(
        self, proc: Procedure, profile: EdgeProfile
    ) -> Tuple[ChainSet, Dict[BlockId, BlockId]]:
        """Unsupported: exhaustive search enumerates orders directly."""
        raise NotImplementedError("exhaustive search does not build chains")

    def align_procedure(self, proc: Procedure, profile: EdgeProfile) -> ProcedureLayout:
        if len(proc) > self.max_blocks:
            return self._fallback.align_procedure(proc, profile)
        rest = [bid for bid in proc.blocks if bid != proc.entry]
        best_cost = float("inf")
        best_layout: Optional[ProcedureLayout] = None
        for tail in permutations(rest):
            order = [proc.entry] + list(tail)
            layout = refine_senses(
                ProcedureLayout.from_order(proc, order), self.model, profile
            )
            cost = self._layout_cost(layout, profile)
            if cost < best_cost:
                best_cost = cost
                best_layout = layout
        assert best_layout is not None
        return best_layout

    # ------------------------------------------------------------------
    def _layout_cost(self, layout: ProcedureLayout, profile: EdgeProfile) -> float:
        """Position-based modelled cost (no linking needed)."""
        proc = layout.procedure
        position = layout.position
        total = 0.0
        for idx, placement in enumerate(layout.placements):
            block = proc.block(placement.bid)
            if block.kind is TerminatorKind.COND:
                taken_edge = proc.taken_edge(block.bid)
                fall_edge = proc.fallthrough_edge(block.bid)
                assert taken_edge is not None and fall_edge is not None
                target = placement.taken_target
                other = (
                    fall_edge.dst if target == taken_edge.dst else taken_edge.dst
                )
                w_taken = profile.weight(proc.name, block.bid, target)
                w_fall = profile.weight(proc.name, block.bid, other)
                backward = position[target] <= idx
                total += self.model.cond_cost(w_fall, w_taken, backward)
                if placement.jump_target is not None:
                    total += self.model.uncond_cost(w_fall)
            elif block.kind is TerminatorKind.UNCOND:
                if not placement.branch_removed:
                    dst = proc.taken_edge(block.bid).dst  # type: ignore[union-attr]
                    total += self.model.uncond_cost(
                        profile.weight(proc.name, block.bid, dst)
                    )
            elif block.kind is TerminatorKind.FALLTHROUGH:
                if placement.jump_target is not None:
                    total += self.model.uncond_cost(
                        profile.weight(proc.name, block.bid, placement.jump_target)
                    )
        return total
