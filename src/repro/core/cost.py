"""The Cost branch alignment heuristic (section 4 of the paper).

Like Greedy, the Cost algorithm walks edges from heaviest to lightest,
but before linking S -> D it consults the architecture cost model:

* For a single-exit block, it weighs making the edge a fall-through
  against ending the block with an unconditional branch.
* For a conditional block it weighs three configurations — either
  successor as the fall-through, or *neither* (appending an unconditional
  jump to one side), the transformation that converts a self-loop's
  repeated mispredict into a correctly-predicted fall-through plus a
  cheap jump under the FALLTHROUGH architecture.
* It also examines the other predecessors of D: if some other block would
  profit more from having D as its fall-through, the link is deferred.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..cfg import BlockId, Procedure, TerminatorKind
from ..profiling.edge_profile import EdgeProfile
from .align import Aligner, greedy_link_pass
from .chains import ChainSet
from .costmodel import ArchModel


@dataclass(frozen=True)
class AlignmentOption:
    """One candidate configuration for a block's layout successor.

    ``kind`` is "link" (make ``target`` the fall-through) or "seal" (no
    fall-through successor; conditionals send ``jump`` through an appended
    unconditional jump).  ``cost`` is the modelled cycles of the block's
    branches under this configuration.
    """

    kind: str
    cost: float
    target: Optional[BlockId] = None
    jump: Optional[BlockId] = None


def block_options(
    proc: Procedure,
    bid: BlockId,
    profile: EdgeProfile,
    model: ArchModel,
    retreating: Set[Tuple[BlockId, BlockId]],
    chains: Optional[ChainSet] = None,
) -> List[AlignmentOption]:
    """Enumerate the feasible alignment configurations for one block.

    When ``chains`` is given, link options that are already structurally
    impossible are dropped.  Options come back sorted cheapest first, with
    link options preferred on ties (a fall-through never costs more than
    the equivalent jump, and keeps the code smaller).
    """
    block = proc.block(bid)
    options: List[AlignmentOption] = []
    if block.kind is TerminatorKind.COND:
        taken = proc.taken_edge(bid).dst  # type: ignore[union-attr]
        fall = proc.fallthrough_edge(bid).dst  # type: ignore[union-attr]
        w_taken = profile.weight(proc.name, bid, taken)
        w_fall = profile.weight(proc.name, bid, fall)
        back_taken = (bid, taken) in retreating
        back_fall = (bid, fall) in retreating
        if chains is None or chains.can_link(bid, fall):
            options.append(
                AlignmentOption(
                    "link", model.cond_cost(w_fall, w_taken, back_taken), target=fall
                )
            )
        if chains is None or chains.can_link(bid, taken):
            options.append(
                AlignmentOption(
                    "link", model.cond_cost(w_taken, w_fall, back_fall), target=taken
                )
            )
        options.append(
            AlignmentOption(
                "seal",
                model.cond_neither_cost(w_fall, w_taken, back_taken),
                jump=fall,
            )
        )
        options.append(
            AlignmentOption(
                "seal",
                model.cond_neither_cost(w_taken, w_fall, back_fall),
                jump=taken,
            )
        )
    elif block.kind in (TerminatorKind.FALLTHROUGH, TerminatorKind.UNCOND):
        edge = proc.fallthrough_edge(bid) or proc.taken_edge(bid)
        assert edge is not None
        weight = profile.weight(proc.name, bid, edge.dst)
        linked_cost, unlinked_cost = model.single_exit_costs(weight)
        if chains is None or chains.can_link(bid, edge.dst):
            options.append(AlignmentOption("link", linked_cost, target=edge.dst))
        options.append(AlignmentOption("seal", unlinked_cost))
    options.sort(key=lambda o: (o.cost, 0 if o.kind == "link" else 1, o.target or -1))
    return options


class CostAligner(Aligner):
    """Architecture-aware greedy alignment using local cost decisions."""

    name = "cost"

    def __init__(self, model: ArchModel, chain_order: str = "weight"):
        self.model = model
        self.chain_order = chain_order

    def build_chains(
        self, proc: Procedure, profile: EdgeProfile
    ) -> Tuple[ChainSet, Dict[BlockId, BlockId]]:
        """Decide each hot block's cheapest configuration in weight order."""
        chains = ChainSet(proc)
        retreating = proc.cyclic_edge_pairs()
        jump_prefs: Dict[BlockId, BlockId] = {}
        decided: Set[BlockId] = set()

        for (src, _dst), _w in profile.sorted_edges(proc, min_weight=1):
            if src in decided:
                continue
            block = proc.block(src)
            if not block.kind.alignable:
                continue
            options = block_options(proc, src, profile, self.model, retreating, chains)
            if not options:
                continue
            best = options[0]
            if best.kind == "link":
                assert best.target is not None
                if self._should_defer(
                    proc, src, best, profile, retreating, chains, decided
                ):
                    continue
                chains.link(src, best.target)
            else:
                chains.seal(src)
                if block.kind is TerminatorKind.COND and best.jump is not None:
                    jump_prefs[src] = best.jump
            decided.add(src)

        greedy_link_pass(chains, proc, profile, min_weight=0)
        return chains, jump_prefs

    # ------------------------------------------------------------------
    def _should_defer(
        self,
        proc: Procedure,
        src: BlockId,
        best: AlignmentOption,
        profile: EdgeProfile,
        retreating: Set[Tuple[BlockId, BlockId]],
        chains: ChainSet,
        decided: Set[BlockId],
    ) -> bool:
        """True if another predecessor profits more from this target.

        "We examine all the predecessors of D to see if it is more cost
        effective to connect D to another node."  Benefit is measured as
        the modelled cycles saved by getting the target as fall-through
        versus this block's best alternative configuration.
        """
        target = best.target
        assert target is not None
        my_benefit = self._link_benefit(proc, src, target, profile, retreating, chains)
        for pred in proc.predecessors(target):
            if pred == src or pred in decided:
                continue
            if not proc.block(pred).kind.alignable:
                continue
            if not chains.can_link(pred, target):
                continue
            their_benefit = self._link_benefit(
                proc, pred, target, profile, retreating, chains
            )
            if their_benefit > my_benefit:
                return True
        return False

    def _link_benefit(
        self,
        proc: Procedure,
        src: BlockId,
        target: BlockId,
        profile: EdgeProfile,
        retreating: Set[Tuple[BlockId, BlockId]],
        chains: ChainSet,
    ) -> float:
        options = block_options(proc, src, profile, self.model, retreating, chains)
        with_target = [o.cost for o in options if o.kind == "link" and o.target == target]
        without = [o.cost for o in options if not (o.kind == "link" and o.target == target)]
        if not with_target or not without:
            return 0.0
        return min(without) - min(with_target)
