"""Hwu & Chang (IMPACT-I) style trace packing — a prior-work baseline.

From the paper's related work: "Hwu and Chang examined all basic blocks,
rearranging them to achieve a better branch alignment ... For each
subroutine, instructions are packed using the most frequently executed
traces, moving infrequently executed traces to the end of the function."
(This reproduction performs no inlining or global analysis, matching the
paper's own restrictions.)

The algorithm grows *traces*: starting from the hottest unplaced block, it
repeatedly extends the trace along the most frequently executed outgoing
edge whose target is still unplaced, then starts the next trace at the
hottest remaining block.  Traces are emitted hottest-first (after the
entry trace).  Unlike Pettis–Hansen chains, trace growing follows *taken*
edges just as happily as fall-through edges — each selected edge becomes a
fall-through in the final layout where structurally possible.

The paper reports Hwu & Chang measured a 58% fall-through rate after this
style of alignment; the trace aligner gives the test suite that historical
reference point next to Greedy, Cost and TryN.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..cfg import BlockId, Procedure
from ..profiling.edge_profile import EdgeProfile
from .align import Aligner, greedy_link_pass
from .chains import ChainSet


class TraceAligner(Aligner):
    """IMPACT-I-style trace growing over profile-weighted edges."""

    name = "trace"

    def __init__(self, chain_order: str = "weight"):
        self.chain_order = chain_order

    def build_chains(
        self, proc: Procedure, profile: EdgeProfile
    ) -> Tuple[ChainSet, Dict[BlockId, BlockId]]:
        """Grow hottest-first traces along heaviest outgoing edges."""
        chains = ChainSet(proc)
        placed: Set[BlockId] = set()
        # Hottest-block seeds, entry first so the entry trace leads.
        seeds = sorted(
            proc.blocks,
            key=lambda bid: (
                bid != proc.entry,
                -profile.block_weight(proc, bid),
                bid,
            ),
        )
        for seed in seeds:
            if seed in placed:
                continue
            self._grow_trace(proc, profile, chains, placed, seed)
        greedy_link_pass(chains, proc, profile, min_weight=0)
        return chains, {}

    # ------------------------------------------------------------------
    def _grow_trace(
        self,
        proc: Procedure,
        profile: EdgeProfile,
        chains: ChainSet,
        placed: Set[BlockId],
        seed: BlockId,
    ) -> None:
        current = seed
        placed.add(current)
        while True:
            successor = self._best_successor(proc, profile, chains, placed, current)
            if successor is None:
                return
            chains.link(current, successor)
            placed.add(successor)
            current = successor

    def _best_successor(
        self,
        proc: Procedure,
        profile: EdgeProfile,
        chains: ChainSet,
        placed: Set[BlockId],
        bid: BlockId,
    ) -> Optional[BlockId]:
        if not proc.block(bid).kind.alignable:
            return None
        best: Optional[BlockId] = None
        best_weight = -1
        for edge in proc.out_edges(bid):
            dst = edge.dst
            if dst in placed or not chains.can_link(bid, dst):
                continue
            weight = profile.weight(proc.name, bid, dst)
            if weight > best_weight or (weight == best_weight and (best is None or dst < best)):
                best = dst
                best_weight = weight
        return best
