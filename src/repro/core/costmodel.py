"""Architectural branch cost models (Table 1 and section 6 of the paper).

Table 1 assigns each executed branch a cost in cycles, including the cycle
of the branch instruction itself:

====================================  =========================
Unconditional branch                  2  (instruction + misfetch)
Correctly predicted fall-through      1  (instruction)
Correctly predicted taken             2  (instruction + misfetch)
Mispredicted                          5  (instruction + mispredict)
====================================  =========================

What "correctly predicted" means depends on the branch architecture, so
each architecture gets its own :class:`ArchModel`:

* ``FALLTHROUGH`` — always predicts the fall-through path, so every taken
  conditional is mispredicted.
* ``BT/FNT`` — predicts backward branches taken, forward not taken; which
  way a branch points depends on the final layout, approximated during
  alignment by loop-retreating edges.
* ``LIKELY`` — a profile-set likely bit predicts the majority direction.
* ``PHT`` — dynamic direction prediction; the paper's alignment cost model
  assumes conditionals mispredict 10% of the time, with taken branches
  still paying the misfetch.
* ``BTB`` — additionally assumes a 10% BTB miss rate, so taken branches
  (conditional or not) pay the misfetch only 10% of the time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from ..cfg import BlockId, Procedure, TerminatorKind
from ..isa.encoder import LinkedProgram
from ..profiling.condmix import stationary_two_bit_rates
from ..profiling.edge_profile import EdgeProfile

__all__ = [
    "ArchModel",
    "BTBModel",
    "BTFNTModel",
    "BranchCosts",
    "DEFAULT_COSTS",
    "FallthroughModel",
    "LikelyModel",
    "MODELS",
    "PHTModel",
    "make_model",
    "stationary_two_bit_rates",
]


@dataclass(frozen=True)
class BranchCosts:
    """The primitive cycle costs of Table 1 / section 6."""

    instruction: float = 1.0
    misfetch: float = 1.0
    mispredict: float = 4.0

    @property
    def correct_fallthrough(self) -> float:
        return self.instruction

    @property
    def correct_taken(self) -> float:
        return self.instruction + self.misfetch

    @property
    def mispredicted(self) -> float:
        return self.instruction + self.mispredict

    @property
    def unconditional(self) -> float:
        return self.instruction + self.misfetch


#: The paper's cost table.
DEFAULT_COSTS = BranchCosts()


class ArchModel:
    """Expected branch cost under one branch-prediction architecture.

    Subclasses define :meth:`cond_cost`.  All costs are *expected cycles
    per the paper's Table 1*, i.e. they include the branch instruction
    itself, so layouts can be compared by total modelled cycles (as the
    paper does for Figure 3).
    """

    #: Short name used in reports ("fallthrough", "btfnt", ...).
    name: str = "abstract"
    #: Whether :meth:`cond_cost` consults the taken-target direction.
    uses_direction: bool = False

    def __init__(self, costs: BranchCosts = DEFAULT_COSTS):
        self.costs = costs

    # -- primitive costs ------------------------------------------------
    def uncond_cost(self, weight: float) -> float:
        """Cost of executing an unconditional branch ``weight`` times."""
        return weight * self.costs.unconditional

    # -- conditional configurations -------------------------------------
    def cond_cost(self, w_fall: float, w_taken: float, taken_backward: bool) -> float:
        """Cost of a conditional whose fall-through side runs ``w_fall``
        times and taken side ``w_taken`` times; ``taken_backward`` says
        whether the taken target lies at a lower address."""
        raise NotImplementedError

    def cond_neither_cost(
        self, w_via_jump: float, w_taken: float, taken_backward: bool
    ) -> float:
        """Cost of the "align neither" configuration.

        The conditional's fall-through leads to an appended unconditional
        jump (traversed ``w_via_jump`` times); the conditional's taken edge
        handles the other successor.  This is the transformation that turns
        a self-loop's 5-cycle mispredict into 3 cycles under FALLTHROUGH
        (section 4, Cost algorithm discussion).
        """
        return self.cond_cost(w_via_jump, w_taken, taken_backward) + self.uncond_cost(
            w_via_jump
        )

    def single_exit_costs(self, weight: float) -> Tuple[float, float]:
        """(linked, unlinked) costs for a single-exit block.

        Linked means the successor is the layout fall-through (an
        unconditional branch is deleted / none is needed): cost 0.
        Unlinked means an unconditional branch reaches the successor.
        """
        return 0.0, self.uncond_cost(weight)

    # -- whole-layout evaluation -----------------------------------------
    def layout_cost(self, linked: LinkedProgram, profile: EdgeProfile) -> float:
        """Total modelled branch cost of a linked binary under a profile.

        Walks every placed block and charges Table 1 costs using the
        *actual* layout adjacency and branch directions (real addresses),
        making alignment algorithms directly comparable.
        """
        total = 0.0
        for proc in linked.program:
            total += self.procedure_cost(linked, proc, profile)
        return total

    def procedure_cost(
        self, linked: LinkedProgram, proc: Procedure, profile: EdgeProfile
    ) -> float:
        """Modelled branch cost of one procedure within a linked binary."""
        total = 0.0
        layout = linked.layout[proc.name]
        for placement in layout.placements:
            block = proc.block(placement.bid)
            kind = block.kind
            if kind is TerminatorKind.COND:
                taken_edge = proc.taken_edge(block.bid)
                fall_edge = proc.fallthrough_edge(block.bid)
                assert taken_edge is not None and fall_edge is not None
                target = placement.taken_target
                other = (
                    fall_edge.dst if target == taken_edge.dst else taken_edge.dst
                )
                w_taken = profile.weight(proc.name, block.bid, target)
                w_fall = profile.weight(proc.name, block.bid, other)
                lb = linked.block(proc.name, block.bid)
                backward = (
                    linked.block_address(proc.name, target) < lb.term_address
                    if lb.term_address is not None
                    else False
                )
                total += self.cond_cost(w_fall, w_taken, backward)
                if placement.jump_target is not None:
                    total += self.uncond_cost(w_fall)
            elif kind is TerminatorKind.UNCOND:
                if not placement.branch_removed:
                    dst = proc.taken_edge(block.bid).dst  # type: ignore[union-attr]
                    total += self.uncond_cost(
                        profile.weight(proc.name, block.bid, dst)
                    )
            elif kind is TerminatorKind.FALLTHROUGH:
                if placement.jump_target is not None:
                    total += self.uncond_cost(
                        profile.weight(proc.name, block.bid, placement.jump_target)
                    )
            # INDIRECT and RETURN blocks cost the same under every layout.
        return total


class FallthroughModel(ArchModel):
    """Always predicts the fall-through path (section 3, FALLTHROUGH)."""

    name = "fallthrough"

    def cond_cost(self, w_fall: float, w_taken: float, taken_backward: bool) -> float:
        return w_fall * self.costs.correct_fallthrough + w_taken * self.costs.mispredicted


class BTFNTModel(ArchModel):
    """Backward taken, forward not taken (HP PA-RISC, Alpha AXP 21064)."""

    name = "btfnt"
    uses_direction = True

    def cond_cost(self, w_fall: float, w_taken: float, taken_backward: bool) -> float:
        if taken_backward:
            return w_taken * self.costs.correct_taken + w_fall * self.costs.mispredicted
        return w_fall * self.costs.correct_fallthrough + w_taken * self.costs.mispredicted


class LikelyModel(ArchModel):
    """Profile-set likely bit predicts the majority direction (Tera)."""

    name = "likely"

    def cond_cost(self, w_fall: float, w_taken: float, taken_backward: bool) -> float:
        if w_taken > w_fall:
            return w_taken * self.costs.correct_taken + w_fall * self.costs.mispredicted
        return w_fall * self.costs.correct_fallthrough + w_taken * self.costs.mispredicted


class PHTModel(ArchModel):
    """Dynamic direction prediction with an assumed 10% mispredict rate."""

    name = "pht"

    def __init__(self, costs: BranchCosts = DEFAULT_COSTS, mispredict_rate: float = 0.10):
        super().__init__(costs)
        if not 0.0 <= mispredict_rate <= 1.0:
            raise ValueError(f"bad mispredict rate {mispredict_rate}")
        self.mispredict_rate = mispredict_rate

    def cond_cost(self, w_fall: float, w_taken: float, taken_backward: bool) -> float:
        hit = 1.0 - self.mispredict_rate
        correct = (
            w_fall * self.costs.correct_fallthrough + w_taken * self.costs.correct_taken
        )
        return hit * correct + self.mispredict_rate * (w_fall + w_taken) * self.costs.mispredicted


class BTBModel(ArchModel):
    """BTB cost model: 10% mispredict and 10% BTB miss (section 6).

    A taken branch found in the BTB causes no misfetch, so taken branches
    (conditional or unconditional) pay the misfetch only on the assumed
    miss rate.
    """

    name = "btb"

    def __init__(
        self,
        costs: BranchCosts = DEFAULT_COSTS,
        mispredict_rate: float = 0.10,
        miss_rate: float = 0.10,
    ):
        super().__init__(costs)
        if not 0.0 <= mispredict_rate <= 1.0 or not 0.0 <= miss_rate <= 1.0:
            raise ValueError("rates must be in [0, 1]")
        self.mispredict_rate = mispredict_rate
        self.miss_rate = miss_rate

    def _taken_cost(self) -> float:
        return self.costs.instruction + self.miss_rate * self.costs.misfetch

    def uncond_cost(self, weight: float) -> float:
        return weight * self._taken_cost()

    def cond_cost(self, w_fall: float, w_taken: float, taken_backward: bool) -> float:
        hit = 1.0 - self.mispredict_rate
        correct = w_fall * self.costs.correct_fallthrough + w_taken * self._taken_cost()
        return hit * correct + self.mispredict_rate * (w_fall + w_taken) * self.costs.mispredicted


#: Factory registry: model name -> constructor.
MODELS = {
    "fallthrough": FallthroughModel,
    "btfnt": BTFNTModel,
    "likely": LikelyModel,
    "pht": PHTModel,
    "btb": BTBModel,
}


def make_model(name: str, costs: BranchCosts = DEFAULT_COSTS) -> ArchModel:
    """Instantiate an architecture cost model by name."""
    try:
        return MODELS[name](costs)
    except KeyError:
        raise ValueError(f"unknown architecture model {name!r}; pick from {sorted(MODELS)}")
