"""Top-level alignment orchestration and the aligner base class."""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from ..cfg import BlockId, Procedure, Program
from ..isa.layout import ProcedureLayout, ProgramLayout
from ..profiling.edge_profile import EdgeProfile
from .chains import ChainSet
from .layout_order import order_chains


class Aligner:
    """Base class for branch alignment algorithms.

    Subclasses implement :meth:`build_chains`, returning the chain
    structure plus jump preferences (which successor of an unaligned
    conditional travels through the appended jump).  The base class turns
    chains into a concrete :class:`ProgramLayout` via the configured chain
    ordering strategy.
    """

    #: Report name ("greedy", "cost", "try15", ...).
    name: str = "abstract"
    #: Chain concatenation strategy: "weight" or "btfnt" (section 6.1).
    chain_order: str = "weight"
    #: Architecture cost model, when the algorithm is cost-driven.  A
    #: model-driven aligner gets the position-exact sense refinement pass
    #: after chain ordering (see :mod:`repro.core.refine`); the
    #: architecture-blind Greedy algorithm does not, matching the paper.
    model = None
    #: Optional distinct model for the sense-refinement pass.  Used by the
    #: BT/FNT alignment, where chain formation cannot know final branch
    #: directions ("it is not known where the taken branch will be
    #: located", section 6) and therefore searches with a
    #: direction-optimistic model, refining with the true BT/FNT costs
    #: once positions are fixed.
    refine_model = None

    def build_chains(
        self, proc: Procedure, profile: EdgeProfile
    ) -> Tuple[ChainSet, Dict[BlockId, BlockId]]:
        """Build the chain structure plus per-block jump preferences."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def align_procedure(self, proc: Procedure, profile: EdgeProfile) -> ProcedureLayout:
        """Align one procedure, producing a checked layout."""
        chains, jump_prefs = self.build_chains(proc, profile)
        chains.check()
        order = order_chains(chains, profile, self.chain_order)
        layout = ProcedureLayout.from_order(proc, order, jump_preference=jump_prefs)
        refine_with = self.refine_model or self.model
        if refine_with is not None:
            from .refine import refine_senses

            layout = refine_senses(layout, refine_with, profile)
        return layout

    def align(self, program: Program, profile: EdgeProfile) -> ProgramLayout:
        """Align every procedure of a program (procedure order unchanged)."""
        layouts = {
            proc.name: self.align_procedure(proc, profile) for proc in program
        }
        return ProgramLayout(program, layouts)


class OriginalAligner(Aligner):
    """The no-op aligner: the compiler's original layout."""

    name = "orig"

    def align(self, program: Program, profile: EdgeProfile) -> ProgramLayout:
        return ProgramLayout.identity(program)

    def align_procedure(self, proc: Procedure, profile: EdgeProfile) -> ProcedureLayout:
        return ProcedureLayout.identity(proc)

    def build_chains(
        self, proc: Procedure, profile: EdgeProfile
    ) -> Tuple[ChainSet, Dict[BlockId, BlockId]]:
        """Unsupported: the original layout has no chain structure."""
        raise NotImplementedError("the original layout has no chains")


def align_program(
    program: Program, profile: EdgeProfile, aligner: Aligner
) -> ProgramLayout:
    """Convenience wrapper: ``aligner.align(program, profile)``."""
    return aligner.align(program, profile)


def greedy_link_pass(
    chains: ChainSet,
    proc: Procedure,
    profile: EdgeProfile,
    min_weight: int = 0,
) -> None:
    """Link remaining edges in weight order wherever feasible.

    Shared by all aligners as the final pass that threads cold blocks into
    chains: it never changes the modelled cost of hot branches (those are
    already decided) but improves adjacency, mirroring Pettis–Hansen's
    processing of every edge.
    """
    for (src, dst), _w in profile.sorted_edges(proc, min_weight=min_weight):
        if chains.can_link(src, dst):
            chains.link(src, dst)
    # Edges that never executed are absent from the profile entirely;
    # sweep the static CFG so completely-cold regions still chain up.
    for edge in proc.edges:
        if not proc.block(edge.src).kind.alignable:
            continue
        if edge.kind.value in ("fallthrough", "taken") and chains.can_link(
            edge.src, edge.dst
        ):
            chains.link(edge.src, edge.dst)
