"""Decision-tree-inspired trace growth for dispatch-heavy CFGs.

Baer's work on conditional branches in optimal decision trees makes one
observation that transfers directly to block layout: in a tree of
dispatch tests, the expected number of *taken* transfers is minimised by
placing each node's most probable child immediately after it, so the hot
root-to-leaf path becomes pure fall-through and cold outcomes pay the
jumps.

This aligner applies that rule to arbitrary CFGs as greedy trace growth:

* start a trace at the procedure entry;
* repeatedly extend it along the highest-weight feasible outgoing edge
  of the current tail (ties prefer the CFG fall-through successor, then
  the lower block id), the "split on the most probable outcome" step;
* when the trace cannot grow, reseed from the hottest block not yet in
  any trace, so nested dispatch chains each get their own hot spine.

A dispatch ladder — entry testing case 1, falling into a test for
case 2, and so on — therefore lays out exactly in ladder order with each
test's hot target adjacent, while a skewed ladder gets its hot case
hoisted into the fall-through path.

Like Greedy and ext-TSP, the ordering is architecture-blind: one layout
serves every simulated architecture and no sense refinement runs.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..cfg import BlockId, EdgeKind, Procedure
from ..profiling.edge_profile import EdgeProfile
from .align import Aligner, greedy_link_pass
from .chains import ChainSet


class DispTreeAligner(Aligner):
    """Greedy most-probable-successor trace growth."""

    name = "disptree"

    # ------------------------------------------------------------------
    def _best_successor(
        self,
        proc: Procedure,
        profile: EdgeProfile,
        chains: ChainSet,
        bid: BlockId,
        placed: Set[BlockId],
    ) -> Optional[BlockId]:
        """The heaviest feasible successor to extend the trace with."""
        best: Optional[BlockId] = None
        best_rank: Tuple[int, int, int] = (-1, -1, 0)
        for edge in proc.out_edges(bid):
            if edge.kind not in (EdgeKind.FALLTHROUGH, EdgeKind.TAKEN):
                continue
            if edge.dst in placed or not chains.can_link(bid, edge.dst):
                continue
            weight = profile.weight(proc.name, bid, edge.dst)
            rank = (
                weight,
                1 if edge.kind is EdgeKind.FALLTHROUGH else 0,
                -edge.dst,
            )
            if rank > best_rank:
                best, best_rank = edge.dst, rank
        return best

    # ------------------------------------------------------------------
    def build_chains(
        self, proc: Procedure, profile: EdgeProfile
    ) -> Tuple[ChainSet, Dict[BlockId, BlockId]]:
        chains = ChainSet(proc)
        # Seed order: entry first (it must head the layout anyway), then
        # hottest blocks first so each dispatch region grows its own
        # trace before cold stitching runs.
        seeds = [proc.entry] + sorted(
            (b for b in proc.blocks if b != proc.entry),
            key=lambda b: (-profile.block_weight(proc, b), b),
        )
        placed: Set[BlockId] = set()
        for seed in seeds:
            if seed in placed:
                continue
            placed.add(seed)
            cursor = seed
            while True:
                nxt = self._best_successor(proc, profile, chains, cursor, placed)
                if nxt is None:
                    break
                chains.link(cursor, nxt)
                placed.add(nxt)
                cursor = nxt
        greedy_link_pass(chains, proc, profile, min_weight=0)
        return chains, {}
