"""Extended-TSP branch alignment (Newell & Pupyrev, 2018).

Classic Pettis–Hansen chain merging maximises the weight of edges made
*adjacent* — a travelling-salesman objective over fall-throughs.  The
extended-TSP objective also credits edges that end up as *short jumps*,
because a taken branch whose target is nearby stays in the same page and
I-cache lines and is cheap on every modelled front end:

    score(layout) = sum over edges e of w(e) * K(d(e))

where ``d`` is the byte distance from the end of the source block to the
start of the destination block in the final layout, and

    K(0)            = 1.0                         (fall-through)
    K(d), forward   = 0.1 * (1 - d / 1024),  0 < d <= 1024
    K(d), backward  = 0.05 * (1 - d / 640),  0 < d <= 640
    K(d)            = 0 otherwise.

The weights and window sizes are the ones the 2018 paper found by
parameter sweep on large server binaries.

The search is the paper's greedy chain merging: starting from singleton
chains, repeatedly apply the concatenation (either order of any two
chains connected by profiled flow) with the largest positive score gain.
Concatenation never changes intra-chain distances, so the gain of a
merge is exactly the score of the edges crossing the two chains at their
new relative offsets — edges between distinct chains score zero until a
merge prices them in.  Distances are measured in source-block bytes;
link-time jump insertion can stretch a chain by a few instructions, an
approximation the paper makes as well.

Like Greedy, the algorithm is architecture-blind (``model`` stays
``None``): the objective itself is the cost model, so no per-arch sense
refinement runs and one layout serves every simulated architecture.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..cfg import BlockId, Procedure, TerminatorKind
from ..isa.encoder import INSTRUCTION_BYTES
from ..profiling.edge_profile import EdgeProfile
from .align import Aligner, greedy_link_pass
from .chains import ChainSet

#: K(0): the full credit for a fall-through out of a conditional block —
#: the taken transfer disappears entirely.
FALLTHROUGH_WEIGHT = 1.0
#: K(0) for a fall-through out of an unconditional block.  Slightly
#: below the conditional credit: eliding an unconditional jump only
#: saves the jump instruction, while a conditional falling through also
#: saves the misfetch penalty on every modelled front end.  BOLT's
#: ext-TSP implementation weights jump kinds separately for the same
#: reason; the asymmetry also makes equal-weight merge ties resolve
#: toward eliminating taken *branches* rather than jumps.
UNCOND_FALLTHROUGH_WEIGHT = 0.9
#: Peak credit for a short forward jump, decaying linearly to the window.
FORWARD_WEIGHT = 0.1
FORWARD_WINDOW = 1024
#: Peak credit for a short backward jump (loops), decaying to the window.
BACKWARD_WEIGHT = 0.05
BACKWARD_WINDOW = 640


def jump_score(distance: int, conditional: bool = True) -> float:
    """K(d) for one edge at signed byte distance ``distance``.

    ``distance`` is start(dst) - end(src): zero for a fall-through,
    positive for a forward jump, negative for a backward jump.
    ``conditional`` says whether the source block ends in a conditional
    branch (fall-through credit is highest for those).
    """
    if distance == 0:
        return FALLTHROUGH_WEIGHT if conditional else UNCOND_FALLTHROUGH_WEIGHT
    if 0 < distance <= FORWARD_WINDOW:
        return FORWARD_WEIGHT * (1.0 - distance / FORWARD_WINDOW)
    if 0 > distance >= -BACKWARD_WINDOW:
        return BACKWARD_WEIGHT * (1.0 + distance / BACKWARD_WINDOW)
    return 0.0


class ExtTSPAligner(Aligner):
    """Chain merging that maximises the extended-TSP objective."""

    name = "exttsp"

    def __init__(self, min_weight: int = 1):
        #: Edges below this execution count neither score nor drive
        #: merging; they are threaded by the shared cold-edge pass.
        self.min_weight = min_weight

    # ------------------------------------------------------------------
    def _chain_score(
        self,
        chain: List[BlockId],
        sizes: Dict[BlockId, int],
        edges: List[Tuple[BlockId, BlockId, int, bool]],
    ) -> float:
        """Score of the weighted edges with both endpoints in ``chain``."""
        starts: Dict[BlockId, int] = {}
        cursor = 0
        for bid in chain:
            starts[bid] = cursor
            cursor += sizes[bid]
        score = 0.0
        for src, dst, weight, conditional in edges:
            if src in starts and dst in starts:
                distance = starts[dst] - (starts[src] + sizes[src])
                score += weight * jump_score(distance, conditional)
        return score

    # ------------------------------------------------------------------
    def build_chains(
        self, proc: Procedure, profile: EdgeProfile
    ) -> Tuple[ChainSet, Dict[BlockId, BlockId]]:
        chains = ChainSet(proc)
        sizes = {
            bid: proc.block(bid).size * INSTRUCTION_BYTES for bid in proc.blocks
        }
        weighted = [
            (src, dst, weight, proc.block(src).kind is TerminatorKind.COND)
            for (src, dst), weight in profile.sorted_edges(
                proc, min_weight=self.min_weight
            )
        ]
        junction = {
            (src, dst): weight * jump_score(0, cond)
            for src, dst, weight, cond in weighted
        }
        # Greedy merging, best-gain-first.  The gain is lexicographic:
        # the junction's fall-through credit decides, and the
        # distance-decayed jump credits of every other cross edge only
        # break ties and drive credit-only merges.  Without the
        # precedence a 3-point backward-jump credit can outvote a
        # 2-point fall-through difference, trading real fall-throughs
        # for short jumps — the opposite of what K's magnitudes intend.
        while True:
            heads: Dict[BlockId, BlockId] = {}
            for chain in chains.chains():
                for bid in chain:
                    heads[bid] = chain[0]
            linked: Dict[BlockId, List[BlockId]] = {
                head: chains.chain_of(head) for head in set(heads.values())
            }
            pairs = set()
            for src, dst, _weight, _cond in weighted:
                if heads[src] != heads[dst]:
                    pairs.add((heads[src], heads[dst]))
                    pairs.add((heads[dst], heads[src]))
            best_gain = (0.0, 0.0)
            best_pair: Tuple[BlockId, BlockId] | None = None
            for first, second in sorted(pairs):
                left, right = linked[first], linked[second]
                if not chains.can_link(left[-1], right[0]):
                    continue
                total = (
                    self._chain_score(left + right, sizes, weighted)
                    - self._chain_score(left, sizes, weighted)
                    - self._chain_score(right, sizes, weighted)
                )
                adjacency = junction.get((left[-1], right[0]), 0.0)
                gain = (adjacency, total - adjacency)
                if gain > best_gain:
                    best_gain = gain
                    best_pair = (first, second)
            if best_pair is None:
                break
            chains.link(linked[best_pair[0]][-1], linked[best_pair[1]][0])
        # Thread the cold remainder exactly like every other algorithm.
        greedy_link_pass(chains, proc, profile, min_weight=0)
        return chains, {}
