"""The pluggable aligner registry: one enumeration point for algorithms.

Historically the algorithm set was hard-coded in four layers — the
experiment driver, the claims wiring, the CLI dispatch, and ad-hoc
architecture special cases ("Greedy orders chains by precedence on
BT/FNT").  This module replaces all of them with data:

* an :class:`AlignerSpec` describes one algorithm — its stable report
  name, provenance (which paper it comes from), the cost models it
  consumes, per-architecture compatibility flags with *structured skip
  reasons*, and a factory that plans concrete :class:`AlignerVariant`\\ s
  for a requested architecture set;
* :func:`register_aligner` adds a spec; everything downstream (the
  experiment driver, the tournament harness, the differential oracle,
  the bisimulation prover, the CLI) iterates the registry instead of
  naming algorithms.

Adding a new alignment algorithm is now one file: subclass
:class:`~repro.core.align.Aligner`, build an :class:`AlignerSpec`, call
:func:`register_aligner`.  The experiment driver, tournament, oracle,
prover and CLI pick it up without modification.

Variant planning subsumes the old special cases.  One algorithm may
field several concrete aligner instances, each serving a subset of the
simulated architectures: Greedy fields a highest-executed-first variant
for every architecture except BT/FNT plus a Pettis–Hansen
precedence-order variant for BT/FNT ("it is not known where the taken
branch will be located", section 6); TryN fields one search per
architecture cost model.  A requested architecture no variant serves is
returned as a structured skip — a ``(architecture, reason)`` record the
experiment surfaces instead of silently omitting the row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .align import Aligner, OriginalAligner
from .disptree import DispTreeAligner
from .exttsp import ExtTSPAligner
from .greedy import GreedyAligner
from .tryn import TryNAligner

#: Which simulated architectures each per-model TryN search serves.
TRY_MODEL_ARCHS: Dict[str, Tuple[str, ...]] = {
    "fallthrough": ("fallthrough",),
    "btfnt": ("btfnt",),
    "likely": ("likely",),
    "pht": ("pht-direct", "pht-correlation"),
    "btb": ("btb-64x2", "btb-256x4"),
}

#: The paper's own algorithm line-up, in table-column order.  The
#: Tables 3/4 renderers keep these columns; the registry may hold more.
ALIGNER_KEYS: Tuple[str, ...] = ("orig", "greedy", "try15")

#: Skip reason used when a requested architecture is not covered by any
#: variant of an algorithm (distinct from an explicit incompatibility).
_UNSERVED = "no registered variant of this algorithm serves the architecture"


@dataclass(frozen=True)
class PlanRequest:
    """What a caller asked an algorithm to cover."""

    archs: Tuple[str, ...]
    window: int = 15
    min_weight: int = 2


@dataclass(frozen=True)
class AlignerVariant:
    """One concrete aligner instance serving a subset of architectures.

    ``label`` is the per-layout identity used by the differential oracle
    and the bisimulation prover ("greedy-btfnt", "try15-pht", "exttsp");
    the owning spec's ``name`` is the experiment outcomes key the
    variants share.
    """

    label: str
    aligner: Aligner
    archs: Tuple[str, ...]


@dataclass(frozen=True)
class AlignerPlan:
    """An algorithm's concrete variants for one architecture request."""

    spec: "AlignerSpec"
    variants: Tuple[AlignerVariant, ...]
    #: Requested architectures no variant serves: arch -> reason.
    skips: Mapping[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class AlignerSpec:
    """Registry metadata + factory for one alignment algorithm."""

    #: Stable report name; the experiment outcomes key.
    name: str
    #: Human-readable one-liner for reports and ``--help``.
    title: str
    #: Where the algorithm comes from (paper, year).
    provenance: str
    year: int
    #: Cost models the algorithm consumes; empty = architecture-blind.
    cost_models: Tuple[str, ...]
    #: Architectures the algorithm refuses, with the structured reason
    #: the experiment records instead of silently omitting the row.
    incompatible: Mapping[str, str]
    #: Plans the concrete variants for one request.  The request's
    #: ``archs`` already excludes the incompatible ones.
    factory: Callable[[PlanRequest], Sequence[AlignerVariant]]
    #: True for the no-op aligner whose layout is the original binary.
    identity: bool = False

    def plan(
        self, archs: Sequence[str], window: int = 15, min_weight: int = 2
    ) -> AlignerPlan:
        """Resolve the variants (and skips) for one architecture set."""
        requested = tuple(archs)
        skips: Dict[str, str] = {
            arch: self.incompatible[arch]
            for arch in requested
            if arch in self.incompatible
        }
        compatible = tuple(a for a in requested if a not in self.incompatible)
        variants: List[AlignerVariant] = []
        for variant in self.factory(PlanRequest(compatible, window, min_weight)):
            served = tuple(a for a in variant.archs if a in compatible)
            if served:
                variants.append(
                    AlignerVariant(variant.label, variant.aligner, served)
                )
        covered = {arch for variant in variants for arch in variant.archs}
        for arch in compatible:
            if arch not in covered:
                skips[arch] = _UNSERVED
        return AlignerPlan(spec=self, variants=tuple(variants), skips=skips)


# ----------------------------------------------------------------------
# The registry proper
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, AlignerSpec] = {}


def register_aligner(spec: AlignerSpec, replace: bool = False) -> AlignerSpec:
    """Add an algorithm to the registry (``replace=True`` to overwrite)."""
    if spec.name in _REGISTRY and not replace:
        raise ValueError(f"aligner {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister_aligner(name: str) -> None:
    """Remove a registered algorithm (tests and plug-in teardown)."""
    _REGISTRY.pop(name, None)


def aligner_names() -> Tuple[str, ...]:
    """Every registered algorithm name, in registration order."""
    return tuple(_REGISTRY)


def get_spec(name: str) -> AlignerSpec:
    """The spec registered under ``name`` (ValueError when unknown)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(_REGISTRY) or "none"
        raise ValueError(
            f"unknown aligner {name!r}; registered: {known}"
        ) from None


def plan_algorithms(
    algorithms: Optional[Sequence[str]],
    archs: Sequence[str],
    window: int = 15,
    min_weight: int = 2,
) -> List[AlignerPlan]:
    """Plan every requested algorithm (default: all registered)."""
    names = list(algorithms) if algorithms is not None else list(_REGISTRY)
    return [
        get_spec(name).plan(archs, window=window, min_weight=min_weight)
        for name in names
    ]


def make_aligner(
    name: str, arch: str = "btb", window: int = 15, min_weight: int = 2
) -> Aligner:
    """One concrete aligner instance of ``name`` for one cost-model arch.

    ``arch`` is a cost-model name (fallthrough/btfnt/likely/pht/btb);
    the algorithm's variant serving that model's simulated architectures
    is returned.  Architecture-blind algorithms ignore ``arch``.
    """
    if arch not in TRY_MODEL_ARCHS:
        raise ValueError(
            f"unknown cost-model architecture {arch!r}; "
            f"expected one of {', '.join(TRY_MODEL_ARCHS)}"
        )
    plan = get_spec(name).plan(
        TRY_MODEL_ARCHS[arch], window=window, min_weight=min_weight
    )
    if not plan.variants:
        reasons = "; ".join(f"{a}: {r}" for a, r in plan.skips.items())
        raise ValueError(f"aligner {name!r} serves no {arch!r} architecture ({reasons})")
    return plan.variants[0].aligner


# ----------------------------------------------------------------------
# Built-in registrations
# ----------------------------------------------------------------------
def _orig_variants(request: PlanRequest) -> Sequence[AlignerVariant]:
    return [AlignerVariant("orig", OriginalAligner(), request.archs)]


def _greedy_variants(request: PlanRequest) -> Sequence[AlignerVariant]:
    """Pettis–Hansen Greedy: weight order everywhere, precedence on BT/FNT.

    This is the registry form of what used to be an ad-hoc exclusion in
    the experiment driver: the highest-executed-first variant serves
    every architecture except BT/FNT, whose branches want to point
    backward, served instead by the precedence-order variant
    (section 6.1).
    """
    variants: List[AlignerVariant] = []
    weight_archs = tuple(a for a in request.archs if a != "btfnt")
    if weight_archs:
        variants.append(
            AlignerVariant(
                "greedy", GreedyAligner(chain_order="weight"), weight_archs
            )
        )
    if "btfnt" in request.archs:
        variants.append(
            AlignerVariant(
                "greedy-btfnt", GreedyAligner(chain_order="btfnt"), ("btfnt",)
            )
        )
    return variants


def _tryn_variants(request: PlanRequest) -> Sequence[AlignerVariant]:
    """One windowed search per architecture cost model (paper section 4)."""
    variants: List[AlignerVariant] = []
    for model, served in TRY_MODEL_ARCHS.items():
        wanted = tuple(a for a in served if a in request.archs)
        if not wanted:
            continue
        aligner = TryNAligner.for_architecture(
            model, window=request.window, min_weight=request.min_weight
        )
        variants.append(
            AlignerVariant(f"try{request.window}-{model}", aligner, wanted)
        )
    return variants


def _exttsp_variants(request: PlanRequest) -> Sequence[AlignerVariant]:
    return [AlignerVariant("exttsp", ExtTSPAligner(), request.archs)]


def _disptree_variants(request: PlanRequest) -> Sequence[AlignerVariant]:
    return [AlignerVariant("disptree", DispTreeAligner(), request.archs)]


register_aligner(AlignerSpec(
    name="orig",
    title="original compiler layout (no alignment)",
    provenance="Calder & Grunwald, ASPLOS 1994 (baseline)",
    year=1994,
    cost_models=(),
    incompatible={},
    factory=_orig_variants,
    identity=True,
))

register_aligner(AlignerSpec(
    name="greedy",
    title="Pettis-Hansen bottom-up chain merging",
    provenance="Pettis & Hansen, PLDI 1990",
    year=1990,
    cost_models=(),
    incompatible={},
    factory=_greedy_variants,
))

register_aligner(AlignerSpec(
    name="try15",
    title="windowed exhaustive search per architecture cost model",
    provenance="Calder & Grunwald, ASPLOS 1994",
    year=1994,
    cost_models=tuple(TRY_MODEL_ARCHS),
    incompatible={},
    factory=_tryn_variants,
))

register_aligner(AlignerSpec(
    name="exttsp",
    title="extended-TSP chain merging (fall-through + short-jump score)",
    provenance="Newell & Pupyrev, 'Improved Basic Block Reordering', 2018",
    year=2018,
    cost_models=(),
    incompatible={},
    factory=_exttsp_variants,
))

register_aligner(AlignerSpec(
    name="disptree",
    title="decision-tree trace growth along highest-probability edges",
    provenance="Baer, 'On Conditional Branches in Optimal Decision Trees'",
    year=2006,
    cost_models=(),
    incompatible={},
    factory=_disptree_variants,
))
