"""Chain ordering strategies (section 6.1 of the paper).

Once chains are formed, they must be concatenated into a final block
order.  The paper implemented two strategies in OM:

* ``weight`` — lay chains out from the most executed to the least
  executed.  The paper found this performs slightly better overall
  ("satisfies many of the branch priorities for the BT/FNT model, and at
  the same time allowing better cache locality") and used it for every
  simulation except the BT/FNT one.
* ``btfnt`` — the Pettis–Hansen precedence ordering: place chains so that
  conditional branches which should be predicted taken become *backward*
  branches.

The entry block's chain is always placed first, keeping the procedure
entry at its lowest address.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..cfg import BlockId, EdgeKind, Procedure
from ..profiling.edge_profile import EdgeProfile
from .chains import ChainSet


def order_chains(
    chains: ChainSet,
    profile: EdgeProfile,
    strategy: str = "weight",
) -> List[BlockId]:
    """Concatenate chains into a final block order using ``strategy``."""
    if strategy == "weight":
        ordered = _order_by_weight(chains, profile)
    elif strategy == "btfnt":
        ordered = _order_btfnt(chains, profile)
    else:
        raise ValueError(f"unknown chain-order strategy {strategy!r}")
    out: List[BlockId] = []
    for chain in ordered:
        out.extend(chain)
    return out


def _chain_weight(proc: Procedure, profile: EdgeProfile, chain: Sequence[BlockId]) -> int:
    return sum(profile.block_weight(proc, bid) for bid in chain)


def _split_entry(chains: ChainSet) -> Tuple[List[BlockId], List[List[BlockId]]]:
    entry_chain: List[BlockId] = []
    rest: List[List[BlockId]] = []
    for chain in chains.chains():
        if chain[0] == chains.entry:
            entry_chain = chain
        else:
            rest.append(chain)
    assert entry_chain, "entry chain missing"
    return entry_chain, rest


def _order_by_weight(chains: ChainSet, profile: EdgeProfile) -> List[List[BlockId]]:
    proc = chains.proc
    entry_chain, rest = _split_entry(chains)
    rest.sort(key=lambda c: (-_chain_weight(proc, profile, c), c[0]))
    return [entry_chain] + rest


def _order_btfnt(chains: ChainSet, profile: EdgeProfile) -> List[List[BlockId]]:
    """Pettis–Hansen BT/FNT precedence ordering.

    For every conditional branch predicted taken (by profile majority)
    whose taken target lives in a different chain, we would like the
    target chain placed *before* the branch's chain so the branch points
    backward.  We greedily emit chains: repeatedly pick the chain whose
    unsatisfied "wants to come after" weight is smallest (breaking ties
    toward hotter chains), which approximates a maximum-weight topological
    order of the precedence relation.
    """
    proc = chains.proc
    entry_chain, rest = _split_entry(chains)
    if not rest:
        return [entry_chain]
    chain_index: Dict[BlockId, int] = {}
    all_chains = [entry_chain] + rest
    for idx, chain in enumerate(all_chains):
        for bid in chain:
            chain_index[bid] = idx

    # precedence[a][b] = weight preferring chain b placed before chain a.
    precedence: Dict[int, Dict[int, int]] = {i: {} for i in range(len(all_chains))}
    for block in proc:
        taken_edge = proc.taken_edge(block.bid)
        fall_edge = proc.fallthrough_edge(block.bid)
        if taken_edge is None or fall_edge is None:
            continue  # only conditionals generate direction preferences
        w_taken = profile.weight(proc.name, block.bid, taken_edge.dst)
        w_fall = profile.weight(proc.name, block.bid, fall_edge.dst)
        if w_taken <= w_fall:
            continue  # predicted not-taken; no placement preference
        src_chain = chain_index[block.bid]
        dst_chain = chain_index[taken_edge.dst]
        if src_chain == dst_chain:
            continue
        bucket = precedence[src_chain]
        bucket[dst_chain] = bucket.get(dst_chain, 0) + w_taken

    placed = [0]  # entry chain is always first
    remaining = set(range(1, len(all_chains)))
    placed_set = {0}
    weights = [
        _chain_weight(proc, profile, chain) for chain in all_chains
    ]
    while remaining:
        best = None
        best_key = None
        for idx in sorted(remaining):
            unsatisfied = sum(
                w for before, w in precedence[idx].items() if before not in placed_set
            )
            key = (unsatisfied, -weights[idx], idx)
            if best_key is None or key < best_key:
                best_key = key
                best = idx
        assert best is not None
        placed.append(best)
        placed_set.add(best)
        remaining.remove(best)
    return [all_chains[i] for i in placed]
