"""Position-exact sense refinement after chain ordering.

During chain construction the BT/FNT cost model can only *guess* whether a
taken branch will point backward — the paper notes this directly: "When
forming chains, it is not known where the taken branch will be located in
the final procedure until the chains are formed and laid out."  Once the
block order is fixed, however, every branch direction is known exactly, so
each conditional's remaining freedom — which successor its taken edge
names, and whether an appended jump carries the other successor — can be
re-optimised exactly without moving any block:

* configuration T: the branch takes the original taken successor; the
  fall-through side reaches the other successor directly (if adjacent) or
  through an appended jump;
* configuration F: the branch sense is inverted, symmetrically.

Both are evaluated under the architecture cost model with the true
backward/forward direction read off the final positions, and the cheaper
one wins.  This never changes the dynamic block sequence, only branch
senses and jump placement, so it composes with any chain-building
algorithm.
"""

from __future__ import annotations

from typing import Optional

from ..cfg import TerminatorKind
from ..isa.layout import BlockPlacement, ProcedureLayout
from ..profiling.edge_profile import EdgeProfile
from .costmodel import ArchModel


def refine_senses(
    layout: ProcedureLayout, model: ArchModel, profile: EdgeProfile
) -> ProcedureLayout:
    """Re-pick every conditional's sense/jump optimally for a fixed order."""
    proc = layout.procedure
    order = [p.bid for p in layout.placements]
    position = {bid: idx for idx, bid in enumerate(order)}
    refined = []
    for idx, placement in enumerate(layout.placements):
        block = proc.block(placement.bid)
        if block.kind is not TerminatorKind.COND:
            refined.append(placement)
            continue
        taken = proc.taken_edge(block.bid).dst  # type: ignore[union-attr]
        fall = proc.fallthrough_edge(block.bid).dst  # type: ignore[union-attr]
        w_taken = profile.weight(proc.name, block.bid, taken)
        w_fall = profile.weight(proc.name, block.bid, fall)
        nxt = order[idx + 1] if idx + 1 < len(order) else None

        # Configuration T: branch takes `taken`; fall-through side is `fall`.
        cost_t = model.cond_cost(w_fall, w_taken, position[taken] <= idx)
        if nxt != fall:
            cost_t += model.uncond_cost(w_fall)
        # Configuration F: inverted; branch takes `fall`, fall-through `taken`.
        cost_f = model.cond_cost(w_taken, w_fall, position[fall] <= idx)
        if nxt != taken:
            cost_f += model.uncond_cost(w_taken)

        if cost_f < cost_t:
            jump: Optional[int] = None if nxt == taken else taken
            refined.append(
                BlockPlacement(block.bid, taken_target=fall, jump_target=jump)
            )
        else:
            jump = None if nxt == fall else fall
            refined.append(
                BlockPlacement(block.bid, taken_target=taken, jump_target=jump)
            )
    return ProcedureLayout(proc, refined)
