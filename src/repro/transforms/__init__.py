"""CFG transformations beyond pure reordering (the paper's future work)."""

from .unroll import (
    UnrollError,
    find_self_loops,
    unroll_program_self_loops,
    unroll_self_loop,
)

__all__ = [
    "UnrollError",
    "find_self_loops",
    "unroll_program_self_loops",
    "unroll_self_loop",
]
