"""CFG transformations beyond pure reordering (the paper's future work)."""

from .meld import (
    AppliedMeld,
    MeldError,
    MeldReport,
    force_meld,
    meld_program,
    meldable_sites,
)
from .unroll import (
    UnrollError,
    find_self_loops,
    unroll_program_self_loops,
    unroll_self_loop,
)

__all__ = [
    "AppliedMeld",
    "MeldError",
    "MeldReport",
    "UnrollError",
    "find_self_loops",
    "force_meld",
    "meld_program",
    "meldable_sites",
    "unroll_program_self_loops",
    "unroll_self_loop",
]
