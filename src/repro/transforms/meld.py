"""Branch melding: remove conditional branches the analyzer proves dead.

The legality analyzer (:mod:`repro.staticcheck.legality`) marks a
conditional site *meldable* (diamond) or *if-convertible* (triangle)
when its two successor observation chains are indistinguishable to both
the bisimulation prover and the dynamic oracle.  The transform then:

* rewrites the site's terminator from a conditional branch to an
  unconditional branch targeting the old **fall-through** successor —
  same block size, so the observable op count is untouched, and the
  surviving arm keeps its original sense;
* drops the blocks that become unreachable (the taken-side glue);
* leaves everything else, including block ids, intact, so edge profiles
  and decision traces for surviving sites still apply.

The residual unconditional branch is exactly what the aligners already
know how to delete (``BlockPlacement.branch_removed``) when the target
ends up adjacent — melding feeds alignment, which is the interaction
the study in ``repro meld --study`` measures.

:func:`force_meld` applies the same rewrite *without* consulting the
analyzer.  It exists for fault probes: an illegal meld must be rejected
by the prover, flagged by the RL018–RL021 lint passes, and caught by
the dynamic meld oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..cfg import (
    BasicBlock,
    BlockId,
    Edge,
    EdgeKind,
    Procedure,
    Program,
    TerminatorKind,
)
from ..staticcheck.dataflow import ProgramAnalyses
from ..staticcheck.legality import (
    LegalityReport,
    SiteLegality,
    analyze_program,
)


class MeldError(ValueError):
    """A meld request that cannot be applied."""


@dataclass(frozen=True)
class AppliedMeld:
    """One applied branch removal, recorded for audit by RL018–RL021."""

    procedure: str
    site: BlockId
    action: str  # "meld" (diamond) or "if-convert" (triangle)
    shape: str
    target: BlockId
    removed: Tuple[BlockId, ...]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form of the record."""
        return {
            "procedure": self.procedure,
            "site": self.site,
            "action": self.action,
            "shape": self.shape,
            "target": self.target,
            "removed": list(self.removed),
        }


@dataclass
class MeldReport:
    """Everything one :func:`meld_program` run did and declined to do."""

    applied: List[AppliedMeld] = field(default_factory=list)
    blocked: List[SiteLegality] = field(default_factory=list)
    removed_blocks: int = 0

    @property
    def melded(self) -> bool:
        return bool(self.applied)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form of the report."""
        return {
            "applied": [m.to_dict() for m in self.applied],
            "blocked": [s.to_dict() for s in self.blocked],
            "removed_blocks": self.removed_blocks,
        }


def _meld_site(proc: Procedure, site: BlockId) -> Tuple[Procedure, Tuple[BlockId, ...]]:
    """Rewrite one conditional site to an unconditional branch.

    Returns the new procedure and the ids of the blocks dropped as
    newly unreachable.  Performs only *structural* checks; legality is
    the caller's business (which is what lets fault probes force an
    illegal meld through the same code path).
    """
    block = proc.blocks.get(site)
    if block is None:
        raise MeldError(f"{proc.name}: no block {site}")
    if block.kind is not TerminatorKind.COND:
        raise MeldError(
            f"{proc.name}: block {site} is {block.kind.value}, not a "
            "conditional site"
        )
    fall = proc.fallthrough_edge(site)
    if fall is None:  # pragma: no cover - validate() guarantees the edge
        raise MeldError(f"{proc.name}: block {site} has no fall-through")
    target = fall.dst

    melded = BasicBlock(
        bid=block.bid,
        size=block.size,
        kind=TerminatorKind.UNCOND,
        calls=list(block.calls),
        behavior=None,
        label=block.label,
    )
    blocks: Dict[BlockId, BasicBlock] = {
        bid: (melded if bid == site else b) for bid, b in proc.blocks.items()
    }
    edges = [
        e
        for e in proc.edges
        if e.src != site
    ]
    edges.append(Edge(site, target, EdgeKind.TAKEN))

    # Drop blocks no longer reachable from the entry.  A dropped block
    # can never sit between a surviving fall-through pair (a fall-through
    # edge is adjacent in the original order, leaving no room), so the
    # remaining order still validates.
    succ: Dict[BlockId, List[BlockId]] = {bid: [] for bid in blocks}
    for e in edges:
        succ[e.src].append(e.dst)
    live: Set[BlockId] = set()
    stack = [proc.entry]
    while stack:
        bid = stack.pop()
        if bid in live:
            continue
        live.add(bid)
        stack.extend(s for s in succ[bid] if s not in live)
    removed = tuple(
        bid for bid in proc.original_order if bid not in live
    )
    new_proc = Procedure(
        proc.name,
        [blocks[bid] for bid in proc.original_order if bid in live],
        [e for e in edges if e.src in live and e.dst in live],
    )
    return new_proc, removed


def meld_program(
    program: Program,
    legality: Optional[LegalityReport] = None,
    analyses: Optional[ProgramAnalyses] = None,
) -> Tuple[Program, MeldReport]:
    """Apply every analyzer-approved meld, re-analysing to a fixpoint.

    Each applied meld changes the CFG (and can expose or retract other
    opportunities), so the program is re-analysed after every round
    until no approved site remains.  The returned report carries one
    :class:`AppliedMeld` per removal plus the final blocked-site table.
    """
    if analyses is None:
        analyses = ProgramAnalyses()
    report = MeldReport()
    procs = {name: program.procedures[name] for name in program.order}
    current = program
    rounds = program.static_conditional_sites() + 1
    for _ in range(rounds):
        verdicts = (
            legality if legality is not None else analyze_program(current, analyses)
        )
        legality = None  # only trust the caller's report for round one
        pending = [s for s in verdicts.sites if s.approved]
        if not pending:
            report.blocked = list(verdicts.blocked())
            break
        site = pending[0]
        proc = procs[site.procedure]
        new_proc, removed = _meld_site(proc, site.site)
        procs[site.procedure] = new_proc
        action = "if-convert" if site.shape == "triangle" else "meld"
        report.applied.append(
            AppliedMeld(
                procedure=site.procedure,
                site=site.site,
                action=action,
                shape=site.shape,
                target=site.target if site.target is not None else -1,
                removed=removed,
            )
        )
        report.removed_blocks += len(removed)
        current = Program(
            [procs[name] for name in program.order], entry=program.entry
        )
    return current, report


def force_meld(
    program: Program, procedure: str, site: BlockId
) -> Tuple[Program, AppliedMeld]:
    """Apply one meld *without* legality checking (fault-probe support).

    The result is structurally valid but — unless the analyzer would
    have approved the site anyway — semantically different from the
    input.  Probes built on this must be rejected by the prover,
    flagged by RL018+, and caught by the dynamic meld oracle.
    """
    proc = program.procedures.get(procedure)
    if proc is None:
        raise MeldError(f"no procedure {procedure!r}")
    new_proc, removed = _meld_site(proc, site)
    fall = proc.fallthrough_edge(site)
    assert fall is not None
    record = AppliedMeld(
        procedure=procedure,
        site=site,
        action="meld",
        shape="complex",
        target=fall.dst,
        removed=removed,
    )
    melded = Program(
        [
            new_proc if name == procedure else program.procedures[name]
            for name in program.order
        ],
        entry=program.entry,
    )
    return melded, record


def meldable_sites(
    program: Program, analyses: Optional[ProgramAnalyses] = None
) -> Sequence[SiteLegality]:
    """Convenience: the analyzer-approved sites of ``program``."""
    return analyze_program(program, analyses).approved()
