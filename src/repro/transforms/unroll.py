"""Self-loop unrolling by block duplication (section 3's suggestion).

Discussing ALVINN's ``input_hidden`` loop, the paper proposes a
transformation beyond pure reordering:

    "We feel that simply duplicating the basic block and then inverting
    (aligning) the branch condition for the added conditional branches in
    this example would offer some performance improvement, even if the
    other optimizations offered by loop unrolling were ignored."

This module implements exactly that: a single-block self-loop ``L`` with
taken edge back to itself is replaced by ``k`` copies.  The first ``k-1``
copies *fall through* to the next copy on the continue path (their taken
edge is the loop exit — the branch condition is inverted), and only the
last copy branches back to the first.  The loop's trip decisions come from
the one shared behaviour, so the computation — how many iterations run —
is unchanged; what changes is that ``k-1`` of every ``k`` iterations now
cross a correctly-predicted fall-through instead of a taken branch.

Under the FALLTHROUGH cost model the per-iteration cost drops from 5
cycles to ``(k - 1 + 5) / k`` before alignment even runs, and combining
with alignment (sealing the last copy) approaches 1 cycle per iteration.
"""

from __future__ import annotations

from typing import List, Optional

from ..cfg import BasicBlock, BlockId, Edge, EdgeKind, Procedure, Program, TerminatorKind
from ..profiling.edge_profile import EdgeProfile
from ..sim.behaviors import Inverted


class UnrollError(ValueError):
    """Raised when a block cannot be unrolled."""


def find_self_loops(proc: Procedure) -> List[BlockId]:
    """Blocks whose taken edge targets themselves (Figure 2's shape)."""
    out = []
    for block in proc:
        if block.kind is not TerminatorKind.COND:
            continue
        taken = proc.taken_edge(block.bid)
        if taken is not None and taken.dst == block.bid:
            out.append(block.bid)
    return out


def unroll_self_loop(proc: Procedure, bid: BlockId, factor: int) -> Procedure:
    """Return a new procedure with self-loop ``bid`` duplicated ``factor`` times.

    The original block id is kept for the first copy, so predecessor edges
    and (crucially) profile weights keyed by block ids stay meaningful.
    """
    if factor < 2:
        raise UnrollError(f"unroll factor must be >= 2, got {factor}")
    block = proc.block(bid)
    if block.kind is not TerminatorKind.COND:
        raise UnrollError(f"block {bid} is not a conditional branch")
    taken = proc.taken_edge(bid)
    fall = proc.fallthrough_edge(bid)
    assert taken is not None and fall is not None
    if taken.dst != bid:
        raise UnrollError(f"block {bid} is not a self-loop")
    if block.calls:
        raise UnrollError(f"block {bid} contains call sites; refusing to duplicate")
    if block.behavior is None:
        raise UnrollError(f"block {bid} has no behaviour to share across copies")

    exit_dst = fall.dst
    next_id = max(proc.blocks) + 1
    copy_ids = [bid] + [next_id + i for i in range(factor - 1)]

    new_blocks: List[BasicBlock] = []
    new_edges: List[Edge] = [
        e for e in proc.edges if e.src != bid  # keep everything else intact
    ]
    for order_bid in proc.original_order:
        if order_bid != bid:
            new_blocks.append(proc.block(order_bid))
            continue
        for idx, copy_id in enumerate(copy_ids):
            last = idx == factor - 1
            behavior = block.behavior if last else Inverted(block.behavior)
            new_blocks.append(
                BasicBlock(
                    bid=copy_id,
                    size=block.size,
                    kind=TerminatorKind.COND,
                    behavior=behavior,
                    label=f"{block.label or bid}u{idx}",
                )
            )
            if last:
                # Continue path branches back to the first copy; the exit
                # falls through to the block after the loop.
                new_edges.append(Edge(copy_id, copy_ids[0], EdgeKind.TAKEN))
                new_edges.append(Edge(copy_id, exit_dst, EdgeKind.FALLTHROUGH))
            else:
                # Inverted sense: continue falls into the next copy, the
                # exit is the taken edge.
                new_edges.append(Edge(copy_id, copy_ids[idx + 1], EdgeKind.FALLTHROUGH))
                new_edges.append(Edge(copy_id, exit_dst, EdgeKind.TAKEN))
    return Procedure(proc.name, new_blocks, new_edges)


def unroll_program_self_loops(
    program: Program,
    factor: int = 2,
    profile: Optional[EdgeProfile] = None,
    min_weight: int = 1,
) -> Program:
    """Unroll every (profitably hot) single-block self-loop in a program.

    With a ``profile``, only loops whose back edge executed at least
    ``min_weight`` times are duplicated — cold loops would just bloat the
    text.  Without one, every self-loop is unrolled.
    """
    new_procs = []
    for proc in program:
        current = proc
        for bid in find_self_loops(proc):
            if profile is not None:
                if profile.weight(proc.name, bid, bid) < min_weight:
                    continue
            current = unroll_self_loop(current, bid, factor)
        new_procs.append(current)
    return Program(new_procs, entry=program.entry)
