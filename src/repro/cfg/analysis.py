"""Classic CFG analyses: dominators, natural loops, loop nesting.

Branch alignment itself only needs the cheap cycle test
(`Procedure.cyclic_edge_pairs`), but a credible CFG substrate carries the
standard analyses: immediate dominators (Cooper/Harvey/Kennedy's simple
iterative algorithm), back edges (`dst` dominates `src`), natural loops
(the blocks that reach a back edge's source without passing its header)
and per-block loop nesting depth.  The analysis layer powers reporting —
"which loops is this hot branch in?" — and gives tests an independent
oracle for the SCC-based hints the aligners use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .blocks import BlockId
from .procedure import Procedure


def reverse_postorder(proc: Procedure) -> List[BlockId]:
    """Blocks reachable from the entry, in reverse postorder."""
    seen: Set[BlockId] = set()
    order: List[BlockId] = []
    stack: List[Tuple[BlockId, int]] = [(proc.entry, 0)]
    seen.add(proc.entry)
    succs = {bid: proc.successors(bid) for bid in proc.blocks}
    while stack:
        bid, idx = stack.pop()
        children = succs[bid]
        while idx < len(children):
            child = children[idx]
            idx += 1
            if child not in seen:
                seen.add(child)
                stack.append((bid, idx))
                stack.append((child, 0))
                break
        else:
            order.append(bid)
    order.reverse()
    return order


def immediate_dominators(proc: Procedure) -> Dict[BlockId, Optional[BlockId]]:
    """idom per reachable block (entry maps to ``None``).

    Cooper, Harvey & Kennedy's iterative algorithm over reverse postorder.
    Unreachable blocks are absent from the result.
    """
    order = reverse_postorder(proc)
    index = {bid: i for i, bid in enumerate(order)}
    idom: Dict[BlockId, Optional[BlockId]] = {proc.entry: proc.entry}
    preds = {
        bid: [p for p in proc.predecessors(bid) if p in index] for bid in order
    }

    def intersect(a: BlockId, b: BlockId) -> BlockId:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for bid in order:
            if bid == proc.entry:
                continue
            candidates = [p for p in preds[bid] if p in idom]
            if not candidates:
                continue
            new = candidates[0]
            for other in candidates[1:]:
                new = intersect(new, other)
            if idom.get(bid) != new:
                idom[bid] = new
                changed = True
    result: Dict[BlockId, Optional[BlockId]] = {
        bid: (None if bid == proc.entry else idom[bid]) for bid in order
    }
    return result


def dominates(idom: Dict[BlockId, Optional[BlockId]], a: BlockId, b: BlockId) -> bool:
    """True if ``a`` dominates ``b`` under the given idom tree."""
    cur: Optional[BlockId] = b
    while cur is not None:
        if cur == a:
            return True
        cur = idom.get(cur)
    return False


def exit_blocks(proc: Procedure) -> List[BlockId]:
    """Blocks with no intra-procedural successors (returns, dead ends)."""
    return [bid for bid in proc.blocks if not proc.successors(bid)]


def immediate_postdominators(proc: Procedure) -> Dict[BlockId, Optional[BlockId]]:
    """ipdom per block that reaches an exit (exits map to ``None``).

    Computed as dominators of the *reversed* CFG rooted at a virtual exit
    node that every exit block (return / dead end) feeds.  Blocks that
    cannot reach any exit (e.g. bodies of infinite loops) are absent from
    the result, mirroring how unreachable blocks are absent from
    :func:`immediate_dominators`.
    """
    exits = exit_blocks(proc)
    if not exits:
        return {}
    # Virtual exit: one id past every real block, never exposed to callers.
    virtual = max(proc.blocks) + 1
    # Reversed adjacency: successors in the reversed graph are CFG
    # predecessors; the virtual exit's successors are the real exits.
    rsucc: Dict[BlockId, List[BlockId]] = {virtual: list(exits)}
    for bid in proc.blocks:
        rsucc[bid] = list(proc.predecessors(bid))

    # Reverse postorder over the reversed graph from the virtual exit.
    seen: Set[BlockId] = {virtual}
    order: List[BlockId] = []
    stack: List[Tuple[BlockId, int]] = [(virtual, 0)]
    while stack:
        bid, idx = stack.pop()
        children = rsucc[bid]
        while idx < len(children):
            child = children[idx]
            idx += 1
            if child not in seen:
                seen.add(child)
                stack.append((bid, idx))
                stack.append((child, 0))
                break
        else:
            order.append(bid)
    order.reverse()
    index = {bid: i for i, bid in enumerate(order)}

    ipdom: Dict[BlockId, BlockId] = {virtual: virtual}
    # Predecessors in the reversed graph are CFG successors (plus the
    # virtual exit as predecessor of every exit block).
    rpred: Dict[BlockId, List[BlockId]] = {
        bid: [s for s in proc.successors(bid) if s in index] for bid in order if bid != virtual
    }
    for bid in exits:
        rpred[bid].append(virtual)

    def intersect(a: BlockId, b: BlockId) -> BlockId:
        while a != b:
            while index[a] > index[b]:
                a = ipdom[a]
            while index[b] > index[a]:
                b = ipdom[b]
        return a

    changed = True
    while changed:
        changed = False
        for bid in order:
            if bid == virtual:
                continue
            candidates = [p for p in rpred[bid] if p in ipdom]
            if not candidates:
                continue
            new = candidates[0]
            for other in candidates[1:]:
                new = intersect(new, other)
            if ipdom.get(bid) != new:
                ipdom[bid] = new
                changed = True
    return {
        bid: (None if ipdom[bid] == virtual else ipdom[bid])
        for bid in order
        if bid != virtual and bid in ipdom
    }


def postdominates(
    ipdom: Dict[BlockId, Optional[BlockId]], a: BlockId, b: BlockId
) -> bool:
    """True if ``a`` postdominates ``b`` under the given ipdom tree."""
    cur: Optional[BlockId] = b
    while cur is not None:
        if cur == a:
            return True
        cur = ipdom.get(cur)
    return False


@dataclass
class NaturalLoop:
    """A natural loop: header, its back edges, and the member blocks."""

    header: BlockId
    back_edges: List[Tuple[BlockId, BlockId]] = field(default_factory=list)
    body: Set[BlockId] = field(default_factory=set)

    @property
    def size(self) -> int:
        return len(self.body)


def natural_loops(proc: Procedure) -> List[NaturalLoop]:
    """All natural loops, merged per header, sorted by header id.

    A back edge is an edge whose destination dominates its source; the
    loop body is everything that reaches the source without passing the
    header.  Irreducible cycles (none are produced by the structured
    templates) simply yield no natural loop.
    """
    idom = immediate_dominators(proc)
    loops: Dict[BlockId, NaturalLoop] = {}
    for edge in proc.edges:
        if edge.src not in idom or edge.dst not in idom:
            continue  # unreachable
        if not dominates(idom, edge.dst, edge.src):
            continue
        loop = loops.setdefault(edge.dst, NaturalLoop(header=edge.dst))
        loop.back_edges.append((edge.src, edge.dst))
        # Collect the body by walking predecessors from the source.
        loop.body.add(edge.dst)
        stack = [edge.src]
        while stack:
            bid = stack.pop()
            if bid in loop.body:
                continue
            loop.body.add(bid)
            stack.extend(p for p in proc.predecessors(bid) if p in idom)
    return [loops[h] for h in sorted(loops)]


def loop_depths(proc: Procedure) -> Dict[BlockId, int]:
    """Loop nesting depth per block (0 = not in any natural loop)."""
    depths = {bid: 0 for bid in proc.blocks}
    for loop in natural_loops(proc):
        for bid in loop.body:
            depths[bid] += 1
    return depths
