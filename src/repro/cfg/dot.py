"""Graphviz (DOT) export of procedures, in the style of the paper's figures.

The paper draws fall-through edges darkened (solid/bold here) and taken
edges dotted; nodes are labelled with the block id and its instruction
count in parentheses, and edges carry execution percentages.  This module
regenerates Figures 1-3's topology from our CFG objects.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .blocks import EdgeKind
from .procedure import Procedure

_EDGE_STYLE = {
    EdgeKind.FALLTHROUGH: 'style=bold',
    EdgeKind.TAKEN: 'style=dotted',
    EdgeKind.INDIRECT: 'style=dashed',
}


def procedure_to_dot(
    proc: Procedure,
    edge_weights: Optional[Dict[Tuple[int, int], int]] = None,
    title: Optional[str] = None,
) -> str:
    """Render ``proc`` as a DOT digraph string.

    ``edge_weights`` maps (src, dst) block-id pairs to execution counts; when
    given, edges are labelled with the percentage of total edge executions,
    matching the labelling convention of Figure 1 in the paper.
    """
    total = sum(edge_weights.values()) if edge_weights else 0
    lines = [f'digraph "{title or proc.name}" {{']
    lines.append('  node [shape=box, fontname="Helvetica"];')
    for block in proc:
        name = block.label or f"B{block.bid}"
        lines.append(f'  n{block.bid} [label="{name} ({block.size})"];')
    for edge in proc.edges:
        attrs = [_EDGE_STYLE[edge.kind]]
        if edge_weights and total:
            weight = edge_weights.get((edge.src, edge.dst), 0)
            pct = 100.0 * weight / total
            if pct >= 1.0:
                attrs.append(f'label="{pct:.0f}"')
        lines.append(f'  n{edge.src} -> n{edge.dst} [{", ".join(attrs)}];')
    lines.append("}")
    return "\n".join(lines)
