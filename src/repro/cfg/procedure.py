"""Procedures: directed control-flow graphs of basic blocks."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .blocks import BasicBlock, BlockId, Edge, EdgeKind, TerminatorKind


class CFGError(ValueError):
    """Raised when a procedure's control-flow graph is malformed."""


class Procedure:
    """A named procedure represented as a control-flow graph.

    Blocks are kept in *original layout order*: the order of the ``blocks``
    argument is the order in which the compiler emitted them, which defines
    the initial placement that branch alignment rewrites.  The first block
    is the procedure entry and always remains first after alignment.
    """

    def __init__(self, name: str, blocks: Iterable[BasicBlock], edges: Iterable[Edge]):
        self.name = name
        self._order: List[BlockId] = []
        self.blocks: Dict[BlockId, BasicBlock] = {}
        for block in blocks:
            if block.bid in self.blocks:
                raise CFGError(f"{name}: duplicate block id {block.bid}")
            self.blocks[block.bid] = block
            self._order.append(block.bid)
        if not self._order:
            raise CFGError(f"{name}: procedure has no blocks")
        self.edges: List[Edge] = list(edges)
        self._out: Dict[BlockId, List[Edge]] = {bid: [] for bid in self.blocks}
        self._in: Dict[BlockId, List[Edge]] = {bid: [] for bid in self.blocks}
        for edge in self.edges:
            if edge.src not in self.blocks:
                raise CFGError(f"{name}: edge {edge} has unknown source")
            if edge.dst not in self.blocks:
                raise CFGError(f"{name}: edge {edge} has unknown destination")
            self._out[edge.src].append(edge)
            self._in[edge.dst].append(edge)
        self.validate()

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def entry(self) -> BlockId:
        """The entry block id (always laid out first)."""
        return self._order[0]

    @property
    def original_order(self) -> Tuple[BlockId, ...]:
        """Block ids in the original (pre-alignment) layout order."""
        return tuple(self._order)

    def block(self, bid: BlockId) -> BasicBlock:
        """The basic block with id ``bid``."""
        return self.blocks[bid]

    def out_edges(self, bid: BlockId) -> List[Edge]:
        """All out-edges of block ``bid``, in declaration order."""
        return self._out[bid]

    def in_edges(self, bid: BlockId) -> List[Edge]:
        """All in-edges of block ``bid``."""
        return self._in[bid]

    def taken_edge(self, bid: BlockId) -> Optional[Edge]:
        """The taken out-edge of ``bid``, if any."""
        for edge in self._out[bid]:
            if edge.kind is EdgeKind.TAKEN:
                return edge
        return None

    def fallthrough_edge(self, bid: BlockId) -> Optional[Edge]:
        """The fall-through out-edge of ``bid``, if any."""
        for edge in self._out[bid]:
            if edge.kind is EdgeKind.FALLTHROUGH:
                return edge
        return None

    def successors(self, bid: BlockId) -> List[BlockId]:
        """Successor block ids of ``bid`` (one per out-edge)."""
        return [e.dst for e in self._out[bid]]

    def predecessors(self, bid: BlockId) -> List[BlockId]:
        """Predecessor block ids of ``bid``."""
        return [e.src for e in self._in[bid]]

    def __iter__(self) -> Iterator[BasicBlock]:
        for bid in self._order:
            yield self.blocks[bid]

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, bid: BlockId) -> bool:
        return bid in self.blocks

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`CFGError` on failure."""
        for bid, block in self.blocks.items():
            out = self._out[bid]
            kinds = tuple(sorted((e.kind for e in out), key=lambda k: k.value))
            kind = block.kind
            if kind is TerminatorKind.FALLTHROUGH:
                ok = kinds == (EdgeKind.FALLTHROUGH,)
            elif kind is TerminatorKind.COND:
                ok = kinds == (EdgeKind.FALLTHROUGH, EdgeKind.TAKEN)
            elif kind is TerminatorKind.UNCOND:
                ok = kinds == (EdgeKind.TAKEN,)
            elif kind is TerminatorKind.INDIRECT:
                ok = len(out) >= 1 and all(e.kind is EdgeKind.INDIRECT for e in out)
            elif kind is TerminatorKind.RETURN:
                ok = not out
            else:  # pragma: no cover - exhaustive enum
                raise AssertionError(kind)
            if not ok:
                raise CFGError(
                    f"{self.name}: block {bid} ({kind.value}) has illegal "
                    f"out-edges {[str(e) for e in out]}"
                )
            ft = self.fallthrough_edge(bid)
            if ft is not None and ft.dst == bid:
                raise CFGError(
                    f"{self.name}: block {bid} falls through to itself"
                )
            if kind is TerminatorKind.COND:
                taken = self.taken_edge(bid)
                assert taken is not None and ft is not None
                if taken.dst == ft.dst:
                    raise CFGError(
                        f"{self.name}: block {bid} conditional branch has "
                        f"identical taken and fall-through targets"
                    )
        self._validate_original_fallthroughs()

    def _validate_original_fallthroughs(self) -> None:
        """In the original layout each fall-through edge must be adjacent."""
        position = {bid: i for i, bid in enumerate(self._order)}
        for edge in self.edges:
            if edge.kind is not EdgeKind.FALLTHROUGH:
                continue
            if position[edge.dst] != position[edge.src] + 1:
                raise CFGError(
                    f"{self.name}: fall-through edge {edge} is not adjacent "
                    f"in the original layout"
                )

    # ------------------------------------------------------------------
    # Analyses used by the alignment cost models
    # ------------------------------------------------------------------
    def reachable_blocks(self) -> Set[BlockId]:
        """Blocks reachable from the entry via any edge."""
        seen: Set[BlockId] = set()
        stack = [self.entry]
        while stack:
            bid = stack.pop()
            if bid in seen:
                continue
            seen.add(bid)
            stack.extend(self.successors(bid))
        return seen

    def retreating_edges(self) -> Set[Tuple[BlockId, BlockId]]:
        """(src, dst) pairs of edges that close a cycle in a DFS from entry.

        Used by the BT/FNT cost model to approximate which taken branches
        will end up *backward* in the final layout: an edge back to a loop
        header is laid out backward by every reasonable chain ordering.
        """
        retreating: Set[Tuple[BlockId, BlockId]] = set()
        color: Dict[BlockId, int] = {}
        # Iterative DFS with explicit grey/black colouring.
        stack: List[Tuple[BlockId, int]] = [(self.entry, 0)]
        succs: Dict[BlockId, List[BlockId]] = {
            bid: self.successors(bid) for bid in self.blocks
        }
        while stack:
            bid, idx = stack.pop()
            if idx == 0:
                color[bid] = 1  # grey
            children = succs[bid]
            advanced = False
            while idx < len(children):
                child = children[idx]
                idx += 1
                state = color.get(child, 0)
                if state == 1:
                    retreating.add((bid, child))
                elif state == 0:
                    stack.append((bid, idx))
                    stack.append((child, 0))
                    advanced = True
                    break
            if not advanced and idx >= len(children):
                color[bid] = 2  # black
        return retreating

    def cyclic_edge_pairs(self) -> Set[Tuple[BlockId, BlockId]]:
        """(src, dst) pairs of edges whose endpoints share a CFG cycle.

        Both endpoints lying in one strongly connected component means the
        edge participates in a loop, so *some* chain layout can make it a
        backward branch (by wrapping the loop).  The BT/FNT and LIKELY
        alignment cost models use this as the "could be laid out backward"
        hint — it correctly covers loop rotations, which plain
        DFS-retreating edges miss (a rotated loop header's taken edge to
        the body is a tree edge, yet ends up backward after alignment).
        """
        component = self._tarjan_scc()
        return {
            (e.src, e.dst)
            for e in self.edges
            if component[e.src] == component[e.dst]
        }

    def _tarjan_scc(self) -> Dict[BlockId, int]:
        """Iterative Tarjan SCC; returns block -> component id.

        A self-loop edge places its block in a "cyclic" component by
        itself, which the caller detects via the edge-pair test.
        """
        index: Dict[BlockId, int] = {}
        lowlink: Dict[BlockId, int] = {}
        on_stack: Set[BlockId] = set()
        stack: List[BlockId] = []
        component: Dict[BlockId, int] = {}
        counter = [0]
        comp_counter = [0]
        succs = {bid: self.successors(bid) for bid in self.blocks}

        for root in self._order:
            if root in index:
                continue
            work: List[Tuple[BlockId, int]] = [(root, 0)]
            while work:
                bid, child_idx = work.pop()
                if child_idx == 0:
                    index[bid] = lowlink[bid] = counter[0]
                    counter[0] += 1
                    stack.append(bid)
                    on_stack.add(bid)
                recurse = False
                children = succs[bid]
                while child_idx < len(children):
                    child = children[child_idx]
                    child_idx += 1
                    if child not in index:
                        work.append((bid, child_idx))
                        work.append((child, 0))
                        recurse = True
                        break
                    if child in on_stack:
                        lowlink[bid] = min(lowlink[bid], index[child])
                if recurse:
                    continue
                if lowlink[bid] == index[bid]:
                    while True:
                        node = stack.pop()
                        on_stack.discard(node)
                        component[node] = comp_counter[0]
                        if node == bid:
                            break
                    comp_counter[0] += 1
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[bid])
        return component

    def instruction_count(self) -> int:
        """Total static instruction count of the procedure."""
        return sum(block.size for block in self.blocks.values())

    def conditional_sites(self) -> List[BlockId]:
        """Ids of blocks ending in conditional branches."""
        return [b.bid for b in self if b.kind is TerminatorKind.COND]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Procedure({self.name!r}, {len(self)} blocks, {len(self.edges)} edges)"
