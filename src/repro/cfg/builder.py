"""Fluent construction helpers for procedures and programs.

The builder keeps the paper's structural invariant automatic: a block's
fall-through successor is simply the next block declared, so the original
layout is always well-formed.  Blocks are named with strings and mapped to
dense integer ids in declaration order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from .blocks import BasicBlock, BlockId, CallSite, Edge, EdgeKind, TerminatorKind
from .procedure import CFGError, Procedure
from .program import Program


@dataclass
class _PendingBlock:
    name: str
    size: int
    kind: TerminatorKind
    taken: Optional[str] = None
    indirect_targets: Sequence[str] = ()
    behavior: Any = None
    calls: List[CallSite] = field(default_factory=list)
    falls_through: bool = False


class ProcedureBuilder:
    """Builds a :class:`Procedure` block by block, in layout order."""

    def __init__(self, name: str):
        self.name = name
        self._pending: List[_PendingBlock] = []
        self._names: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def _add(self, pending: _PendingBlock) -> "ProcedureBuilder":
        if pending.name in self._names:
            raise CFGError(f"{self.name}: duplicate block name {pending.name!r}")
        self._names[pending.name] = len(self._pending)
        self._pending.append(pending)
        return self

    def fall(self, name: str, size: int = 1, calls: Sequence[CallSite] = ()) -> "ProcedureBuilder":
        """A straight-line block that falls through to the next block."""
        return self._add(
            _PendingBlock(name, size, TerminatorKind.FALLTHROUGH,
                          calls=list(calls), falls_through=True)
        )

    def cond(
        self,
        name: str,
        size: int,
        taken: str,
        behavior: Any = None,
        calls: Sequence[CallSite] = (),
    ) -> "ProcedureBuilder":
        """A block ending in a conditional branch.

        The taken target is ``taken``; the fall-through target is the next
        block declared after this one.
        """
        return self._add(
            _PendingBlock(name, size, TerminatorKind.COND, taken=taken,
                          behavior=behavior, calls=list(calls), falls_through=True)
        )

    def uncond(
        self, name: str, size: int, target: str, calls: Sequence[CallSite] = ()
    ) -> "ProcedureBuilder":
        """A block ending in an unconditional branch to ``target``."""
        return self._add(
            _PendingBlock(name, size, TerminatorKind.UNCOND, taken=target,
                          calls=list(calls))
        )

    def indirect(
        self,
        name: str,
        size: int,
        targets: Sequence[str],
        behavior: Any = None,
        calls: Sequence[CallSite] = (),
    ) -> "ProcedureBuilder":
        """A block ending in an indirect jump to one of ``targets``."""
        return self._add(
            _PendingBlock(name, size, TerminatorKind.INDIRECT,
                          indirect_targets=tuple(targets), behavior=behavior,
                          calls=list(calls))
        )

    def ret(self, name: str, size: int = 1, calls: Sequence[CallSite] = ()) -> "ProcedureBuilder":
        """A block ending in a procedure return."""
        return self._add(
            _PendingBlock(name, size, TerminatorKind.RETURN, calls=list(calls))
        )

    # ------------------------------------------------------------------
    def build(self) -> Procedure:
        """Materialise the procedure, wiring implicit fall-through edges."""
        if not self._pending:
            raise CFGError(f"{self.name}: no blocks declared")
        blocks: List[BasicBlock] = []
        edges: List[Edge] = []
        for idx, pending in enumerate(self._pending):
            blocks.append(
                BasicBlock(
                    bid=idx,
                    size=pending.size,
                    kind=pending.kind,
                    calls=pending.calls,
                    behavior=pending.behavior,
                    label=pending.name,
                )
            )
            if pending.falls_through:
                if idx + 1 >= len(self._pending):
                    raise CFGError(
                        f"{self.name}: block {pending.name!r} falls through "
                        f"but is the last block"
                    )
                edges.append(Edge(idx, idx + 1, EdgeKind.FALLTHROUGH))
            if pending.taken is not None:
                edges.append(Edge(idx, self._resolve(pending.taken), EdgeKind.TAKEN))
            for target in pending.indirect_targets:
                edges.append(Edge(idx, self._resolve(target), EdgeKind.INDIRECT))
        return Procedure(self.name, blocks, edges)

    def _resolve(self, name: str) -> BlockId:
        if name not in self._names:
            raise CFGError(f"{self.name}: unknown block name {name!r}")
        return self._names[name]

    def name_to_id(self) -> Dict[str, BlockId]:
        """Mapping from declared block names to their ids."""
        return dict(self._names)


class ProgramBuilder:
    """Builds a :class:`Program` from a sequence of procedure builders."""

    def __init__(self, entry: Optional[str] = None):
        self._procs: List[Procedure] = []
        self._builders: List[ProcedureBuilder] = []
        self._entry = entry

    def procedure(self, name: str) -> ProcedureBuilder:
        """Start a new procedure builder registered with this program."""
        builder = ProcedureBuilder(name)
        self._builders.append(builder)
        return builder

    def add(self, proc: Procedure) -> "ProgramBuilder":
        """Register an already-built procedure with the program."""
        self._procs.append(proc)
        return self

    def build(self) -> Program:
        """Materialise the program from all registered procedures."""
        procs = self._procs + [b.build() for b in self._builders]
        return Program(procs, entry=self._entry)
