"""Control-flow-graph substrate: blocks, procedures, programs, builders."""

from .analysis import (
    NaturalLoop,
    dominates,
    exit_blocks,
    immediate_dominators,
    immediate_postdominators,
    loop_depths,
    natural_loops,
    postdominates,
    reverse_postorder,
)
from .blocks import (
    BasicBlock,
    BlockId,
    CallSite,
    Edge,
    EdgeKind,
    TerminatorKind,
)
from .builder import ProcedureBuilder, ProgramBuilder
from .dot import procedure_to_dot
from .procedure import CFGError, Procedure
from .program import Program

__all__ = [
    "BasicBlock",
    "BlockId",
    "CFGError",
    "CallSite",
    "Edge",
    "NaturalLoop",
    "EdgeKind",
    "Procedure",
    "ProcedureBuilder",
    "Program",
    "ProgramBuilder",
    "TerminatorKind",
    "dominates",
    "exit_blocks",
    "immediate_dominators",
    "immediate_postdominators",
    "loop_depths",
    "natural_loops",
    "postdominates",
    "procedure_to_dot",
    "reverse_postorder",
]
