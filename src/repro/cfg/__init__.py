"""Control-flow-graph substrate: blocks, procedures, programs, builders."""

from .analysis import (
    NaturalLoop,
    dominates,
    immediate_dominators,
    loop_depths,
    natural_loops,
    reverse_postorder,
)
from .blocks import (
    BasicBlock,
    BlockId,
    CallSite,
    Edge,
    EdgeKind,
    TerminatorKind,
)
from .builder import ProcedureBuilder, ProgramBuilder
from .dot import procedure_to_dot
from .procedure import CFGError, Procedure
from .program import Program

__all__ = [
    "BasicBlock",
    "BlockId",
    "CFGError",
    "CallSite",
    "Edge",
    "NaturalLoop",
    "EdgeKind",
    "Procedure",
    "ProcedureBuilder",
    "Program",
    "ProgramBuilder",
    "TerminatorKind",
    "dominates",
    "immediate_dominators",
    "loop_depths",
    "natural_loops",
    "procedure_to_dot",
    "reverse_postorder",
]
