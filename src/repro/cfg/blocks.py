"""Basic blocks, edges and terminator kinds for the control-flow graph.

The CFG model follows the paper's terminology (section 4):

* An *unconditional branch* block has a single out-going taken edge.
* A *conditional* block has two edges, the taken and the fall-through edge.
* A *fall-through* block has a single out-going fall-through edge.
* Blocks ending in indirect jumps or returns terminate control flow within
  the procedure; their edges (if any) are never considered by alignment.

Procedure calls do **not** terminate basic blocks: a call transfers control
to the callee and control returns to the following instruction, so a call is
modelled as a :class:`CallSite` embedded in a block.  This matches the
paper, which gives call and return edges a weight of zero and ignores them
when aligning branches.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

#: Type alias for basic-block identifiers (stable across re-layout).
BlockId = int


class TerminatorKind(enum.Enum):
    """How a basic block ends."""

    #: No branch instruction; control falls into the (single) successor.
    FALLTHROUGH = "fallthrough"
    #: Conditional direct branch: a taken edge and a fall-through edge.
    COND = "cond"
    #: Unconditional direct branch: a single taken edge.
    UNCOND = "uncond"
    #: Indirect jump (e.g. a switch table): one or more target edges.
    INDIRECT = "indirect"
    #: Procedure return: no intra-procedural successors.
    RETURN = "return"

    @property
    def has_branch_instruction(self) -> bool:
        """True if the block's final instruction is a control transfer."""
        return self is not TerminatorKind.FALLTHROUGH

    @property
    def alignable(self) -> bool:
        """True if branch alignment may choose this block's layout successor.

        Only blocks with an out-degree of one or two through direct edges
        participate in alignment (paper section 4); indirect jumps and
        returns are ignored.
        """
        return self in (
            TerminatorKind.FALLTHROUGH,
            TerminatorKind.COND,
            TerminatorKind.UNCOND,
        )


class EdgeKind(enum.Enum):
    """The static role of a CFG edge in the *original* program layout."""

    #: The not-taken side of a conditional branch, or the single successor
    #: of a fall-through block.
    FALLTHROUGH = "fallthrough"
    #: The target of a taken conditional or unconditional branch.
    TAKEN = "taken"
    #: One possible target of an indirect jump.
    INDIRECT = "indirect"


@dataclass(frozen=True)
class Edge:
    """A directed CFG edge between two blocks of the same procedure."""

    src: BlockId
    dst: BlockId
    kind: EdgeKind

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.src}->{self.dst}[{self.kind.value}]"


@dataclass
class CallSite:
    """A call instruction embedded in a basic block.

    ``offset`` is the instruction index of the call within the block
    (0-based, counted over the block's non-terminator instructions).
    ``callee`` names the target procedure for a direct call; an indirect
    call (C++ virtual dispatch) leaves ``callee`` as ``None`` and supplies a
    ``chooser`` behaviour that picks the callee at execution time.
    """

    offset: int
    callee: Optional[str] = None
    chooser: Optional[Any] = None

    @property
    def is_indirect(self) -> bool:
        return self.callee is None

    def validate(self, block_size: int, has_terminator: bool) -> None:
        """Raise :class:`ValueError` if the call site cannot fit the block."""
        last_plain = block_size - (1 if has_terminator else 0)
        if not 0 <= self.offset < last_plain:
            raise ValueError(
                f"call site offset {self.offset} out of range for block of "
                f"size {block_size} (terminator={has_terminator})"
            )
        if self.callee is None and self.chooser is None:
            raise ValueError("indirect call site requires a chooser")


@dataclass
class BasicBlock:
    """A basic block: a run of instructions ending in at most one branch.

    Attributes:
        bid: Stable identifier, unique within the enclosing procedure.
            Identifiers survive re-layout, which lets edge profiles gathered
            on the original binary drive the alignment of a rewritten one.
        size: Number of instructions in the block, *including* the
            terminator branch when ``kind.has_branch_instruction``.
        kind: The terminator kind.
        calls: Call sites embedded in the block, in instruction order.
        behavior: Optional behaviour object (see :mod:`repro.sim.behaviors`)
            used by the executor to choose the dynamic successor of a
            conditional or indirect terminator.  The CFG layer treats it as
            opaque.
        label: Optional human-readable label for figures and debugging.
    """

    bid: BlockId
    size: int
    kind: TerminatorKind = TerminatorKind.FALLTHROUGH
    calls: List[CallSite] = field(default_factory=list)
    behavior: Any = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"block {self.bid}: size must be >= 1, got {self.size}")
        min_size = len(self.calls) + (1 if self.kind.has_branch_instruction else 0)
        if self.size < max(min_size, 1):
            raise ValueError(
                f"block {self.bid}: size {self.size} too small for "
                f"{len(self.calls)} call sites and kind {self.kind.value}"
            )
        for call in self.calls:
            call.validate(self.size, self.kind.has_branch_instruction)
        offsets = [c.offset for c in self.calls]
        if len(set(offsets)) != len(offsets):
            raise ValueError(f"block {self.bid}: duplicate call-site offsets")
        if offsets != sorted(offsets):
            raise ValueError(f"block {self.bid}: call sites must be offset-ordered")

    @property
    def straightline_size(self) -> int:
        """Number of non-terminator instructions in the block."""
        return self.size - (1 if self.kind.has_branch_instruction else 0)

    def successors_for_kind(self, edges: List[Edge]) -> Tuple[Edge, ...]:
        """Return this block's out-edges, validated against its kind."""
        mine = tuple(e for e in edges if e.src == self.bid)
        return mine

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        name = self.label or f"B{self.bid}"
        return f"{name}({self.size},{self.kind.value})"


def expected_edge_kinds(kind: TerminatorKind) -> Tuple[Tuple[EdgeKind, ...], ...]:
    """The legal multisets of out-edge kinds for each terminator kind.

    Returns a tuple of allowed sorted edge-kind tuples.  Indirect blocks may
    have any positive number of :data:`EdgeKind.INDIRECT` edges, which is
    signalled by a single-element tuple ``(EdgeKind.INDIRECT,)`` meaning
    "one or more".
    """
    if kind is TerminatorKind.FALLTHROUGH:
        return ((EdgeKind.FALLTHROUGH,),)
    if kind is TerminatorKind.COND:
        return ((EdgeKind.FALLTHROUGH, EdgeKind.TAKEN),)
    if kind is TerminatorKind.UNCOND:
        return ((EdgeKind.TAKEN,),)
    if kind is TerminatorKind.INDIRECT:
        return ((EdgeKind.INDIRECT,),)
    if kind is TerminatorKind.RETURN:
        return ((),)
    raise AssertionError(f"unhandled terminator kind {kind}")
