"""Programs: ordered collections of procedures with a designated entry."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .blocks import CallSite
from .procedure import CFGError, Procedure


class Program:
    """A whole program: procedures in link order plus an entry procedure.

    The paper's transformations rearrange basic blocks *within* each
    procedure; procedures themselves are not reordered ("we do not perform
    procedure splitting nor any procedure rearranging", section 6), so the
    procedure order given here is preserved by every layout.
    """

    def __init__(self, procedures: Iterable[Procedure], entry: Optional[str] = None):
        self.procedures: Dict[str, Procedure] = {}
        self._order: List[str] = []
        for proc in procedures:
            if proc.name in self.procedures:
                raise CFGError(f"duplicate procedure name {proc.name!r}")
            self.procedures[proc.name] = proc
            self._order.append(proc.name)
        if not self._order:
            raise CFGError("program has no procedures")
        self.entry = entry if entry is not None else self._order[0]
        if self.entry not in self.procedures:
            raise CFGError(f"entry procedure {self.entry!r} not defined")
        self._validate_calls()

    # ------------------------------------------------------------------
    @property
    def order(self) -> Tuple[str, ...]:
        """Procedure names in link order."""
        return tuple(self._order)

    def procedure(self, name: str) -> Procedure:
        """The procedure named ``name``."""
        return self.procedures[name]

    def __iter__(self) -> Iterator[Procedure]:
        for name in self._order:
            yield self.procedures[name]

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, name: str) -> bool:
        return name in self.procedures

    # ------------------------------------------------------------------
    def _validate_calls(self) -> None:
        for proc in self:
            for block in proc:
                for call in block.calls:
                    if call.callee is not None and call.callee not in self.procedures:
                        raise CFGError(
                            f"{proc.name}: block {block.bid} calls unknown "
                            f"procedure {call.callee!r}"
                        )

    def call_sites(self) -> Iterator[Tuple[Procedure, int, CallSite]]:
        """Yield (procedure, block id, call site) for every call site."""
        for proc in self:
            for block in proc:
                for call in block.calls:
                    yield proc, block.bid, call

    def call_graph(self) -> Dict[str, Set[str]]:
        """Direct-call edges between procedures (indirect calls excluded)."""
        graph: Dict[str, Set[str]] = {name: set() for name in self._order}
        for proc, _bid, call in self.call_sites():
            if call.callee is not None:
                graph[proc.name].add(call.callee)
        return graph

    def instruction_count(self) -> int:
        """Total static instruction count of the program."""
        return sum(proc.instruction_count() for proc in self)

    def static_conditional_sites(self) -> int:
        """Total number of conditional branch sites ("Static" in Table 2)."""
        return sum(len(proc.conditional_sites()) for proc in self)

    def reset_behaviors(self, seed: int = 0) -> None:
        """Reset every block behaviour and call-site chooser to a
        deterministic state derived from ``seed``.

        Running the executor after identical resets replays the identical
        dynamic block sequence, which is how the original and aligned
        binaries are compared on "the same input".
        """
        for proc in self:
            for block in proc:
                if block.behavior is not None:
                    block.behavior.reset(_mix(seed, proc.name, block.bid, 0))
                for idx, call in enumerate(block.calls):
                    if call.chooser is not None:
                        call.chooser.reset(_mix(seed, proc.name, block.bid, idx + 1))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Program({len(self)} procedures, entry={self.entry!r})"


def _mix(seed: int, name: str, bid: int, salt: int) -> int:
    """Derive a stable per-site seed (independent of Python hash salting)."""
    acc = (seed * 1000003) & 0xFFFFFFFF
    for ch in name:
        acc = (acc * 31 + ord(ch)) & 0xFFFFFFFF
    acc = (acc * 1000003 + bid) & 0xFFFFFFFF
    acc = (acc * 1000003 + salt) & 0xFFFFFFFF
    return acc
