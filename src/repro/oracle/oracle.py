"""The differential layout oracle: prove a rewrite is semantics-preserving.

The paper's credibility rests on OM's rewrite changing *where* code
lives, never *what* it does: an aligned binary must execute the same
dynamic instruction stream as the original, only at different addresses.
This module proves that property for every layout the aligners produce,
by replaying each benchmark's trace on the original and the aligned
binary and checking **trace isomorphism**:

* **block-sequence** — both executions visit the identical sequence of
  ``(procedure, block)`` pairs;
* **branch-sense** — every emitted conditional outcome in the aligned
  run equals the original outcome XOR the layout's registered sense
  inversion for that branch;
* **flow-conservation** — the edge traversal counts observed on the
  aligned binary equal the :class:`EdgeProfile` collected on the
  original (the profile the aligner consumed);
* **address-replay** — the original trace's semantic decisions are
  replayed through the aligned *lowered instruction stream* (branch
  target addresses, fall-through adjacency, inserted jumps), verifying
  each transfer lands at the expected block's address.  This is the
  check that catches rewriter bugs the structural layout checks missed:
  a mutated placement, a wrong-sense branch, a retargeted jump;
* **edit-agreement** — the edits :mod:`repro.isa.diff` *reports*
  (inversions, inserted jumps, deleted branches) match the edits
  actually observed in the lowered code, and blocks it does not report
  are lowered identically.

Divergences carry the first diverging trace index plus the expected and
actual block, so a failure reads like a debugger backtrace, not a flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..cfg import BlockId, Program, TerminatorKind
from ..core.registry import TRY_MODEL_ARCHS, aligner_names, get_spec
from ..isa.diff import diff_layouts
from ..isa.encoder import INSTRUCTION_BYTES, LinkedProgram, link, link_identity
from ..isa.instructions import Opcode
from ..isa.layout import ProgramLayout
from ..profiling.edge_profile import EdgeProfile
from .capture import BlockRef, TraceCapture, capture_trace

#: Cap on divergences recorded per check — the first one is the story,
#: the rest confirm it is systematic.
MAX_DIVERGENCES = 5


@dataclass
class Divergence:
    """One observed difference between original and aligned behaviour."""

    check: str
    #: Index into the dynamic trace (block sequence or edge trail), or
    #: ``None`` for static (edit-agreement / flow) findings.
    index: Optional[int]
    expected: str
    actual: str
    detail: str = ""

    def __str__(self) -> str:
        where = f"trace index {self.index}" if self.index is not None else "static"
        text = (
            f"[{self.check}] {where}: expected {self.expected}, "
            f"actual {self.actual}"
        )
        return f"{text} ({self.detail})" if self.detail else text


@dataclass
class OracleReport:
    """The verdict for one aligned layout of one program."""

    label: str
    blocks_compared: int
    edges_replayed: int
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.divergences

    @property
    def status(self) -> str:
        return "PASS" if self.passed else "FAIL"


def _fmt_block(ref: BlockRef) -> str:
    return f"{ref[0]}:{ref[1]}"


# ----------------------------------------------------------------------
# Lowered-code view: terminator / jump targets read from the disassembly
# ----------------------------------------------------------------------
class _LoweredView:
    """Branch targets of a linked image, read from its instruction stream."""

    def __init__(self, linked: LinkedProgram):
        self.linked = linked
        #: (proc, bid) -> terminator branch target address (COND/UNCOND).
        self.term_target: Dict[BlockRef, int] = {}
        #: (proc, bid) -> appended-jump target address.
        self.jump_target: Dict[BlockRef, int] = {}
        #: (proc, bid) -> block has a terminator instruction at all.
        self.has_terminator: Dict[BlockRef, bool] = {}
        self.start_of: Dict[BlockRef, int] = {}
        self.block_at: Dict[int, BlockRef] = {}
        #: Every block starting at an address.  A block lowered to zero
        #: bytes (a one-instruction unconditional whose branch was
        #: removed) shares its start with the block it falls into, so an
        #: address can name several blocks — branching to it reaches all
        #: of them.
        self.blocks_at: Dict[int, List[BlockRef]] = {}
        for proc_name, placed in linked.blocks.items():
            for bid, lb in placed.items():
                ref = (proc_name, bid)
                self.start_of[ref] = lb.start
                self.block_at[lb.start] = ref
                self.blocks_at.setdefault(lb.start, []).append(ref)
        for proc_name in linked.program.order:
            branch_at = {
                instr.address: instr
                for instr in linked.disassemble(proc_name)
                if instr.opcode in (
                    Opcode.COND_BRANCH, Opcode.UNCOND_BRANCH,
                    Opcode.INDIRECT_JUMP, Opcode.RETURN,
                )
            }
            for bid, lb in linked.blocks[proc_name].items():
                ref = (proc_name, bid)
                term = branch_at.get(lb.term_address)
                if term is not None:
                    self.has_terminator[ref] = True
                    if term.target is not None:
                        self.term_target[ref] = term.target
                jump = branch_at.get(lb.jump_address)
                if jump is not None and lb.jump_address is not None:
                    self.jump_target[ref] = jump.target

    def resolve(self, address: int) -> str:
        """Best-effort name of whatever lives at ``address``."""
        ref = self.block_at.get(address)
        return _fmt_block(ref) if ref is not None else f"{address:#x}"


# ----------------------------------------------------------------------
# Individual checks
# ----------------------------------------------------------------------
def _check_block_sequence(
    baseline: TraceCapture, aligned: TraceCapture
) -> List[Divergence]:
    out: List[Divergence] = []
    for index, (expected, actual) in enumerate(zip(baseline.blocks, aligned.blocks)):
        if expected != actual:
            out.append(Divergence(
                "block-sequence", index, _fmt_block(expected), _fmt_block(actual),
            ))
            if len(out) >= MAX_DIVERGENCES:
                return out
    if len(baseline.blocks) != len(aligned.blocks):
        out.append(Divergence(
            "block-sequence",
            min(len(baseline.blocks), len(aligned.blocks)),
            f"{len(baseline.blocks)} blocks",
            f"{len(aligned.blocks)} blocks",
            "trace lengths differ",
        ))
    return out


def _check_branch_sense(
    baseline: TraceCapture, aligned: TraceCapture, layout: ProgramLayout
) -> List[Divergence]:
    inverted = {
        (name, bid)
        for name in layout.program.order
        for bid in layout[name].inverted_conditionals()
    }
    out: List[Divergence] = []
    for index, ((ref0, taken0), (ref1, taken1)) in enumerate(
        zip(baseline.cond_outcomes, aligned.cond_outcomes)
    ):
        if ref0 != ref1:
            out.append(Divergence(
                "branch-sense", index, _fmt_block(ref0), _fmt_block(ref1),
                "conditional executed out of order",
            ))
        else:
            expected = taken0 != (ref0 in inverted)
            if taken1 != expected:
                out.append(Divergence(
                    "branch-sense", index,
                    f"{_fmt_block(ref0)} taken={expected}",
                    f"{_fmt_block(ref1)} taken={taken1}",
                    "outcome disagrees with registered sense inversion",
                ))
        if len(out) >= MAX_DIVERGENCES:
            return out
    if len(baseline.cond_outcomes) != len(aligned.cond_outcomes):
        out.append(Divergence(
            "branch-sense", None,
            f"{len(baseline.cond_outcomes)} conditional executions",
            f"{len(aligned.cond_outcomes)} conditional executions",
        ))
    return out


def _check_flow_conservation(
    profile: EdgeProfile, aligned: TraceCapture
) -> List[Divergence]:
    expected: Dict[Tuple[str, BlockId, BlockId], int] = {}
    for name in profile.procedures():
        for (src, dst), count in profile.proc_edges(name).items():
            if count:
                expected[(name, src, dst)] = count
    out: List[Divergence] = []
    for key in sorted(set(expected) | set(aligned.edge_counts)):
        want, got = expected.get(key, 0), aligned.edge_counts.get(key, 0)
        if want != got:
            proc, src, dst = key
            out.append(Divergence(
                "flow-conservation", None,
                f"{proc}:{src}->{dst} x{want}",
                f"{proc}:{src}->{dst} x{got}",
                "aligned edge counts disagree with the consumed profile",
            ))
            if len(out) >= MAX_DIVERGENCES:
                break
    return out


def _check_address_replay(
    program: Program, baseline: TraceCapture, lowered: _LoweredView
) -> List[Divergence]:
    """Replay the original trace's decisions through the aligned code.

    For every intra-procedural transition ``src -> dst`` the original
    binary performed, derive from the aligned *instruction stream* (not
    the layout data structure) the address control actually transfers
    to, and require it to be ``dst``'s address.
    """
    out: List[Divergence] = []
    kinds = {
        (proc.name, bid): proc.block(bid).kind
        for proc in program
        for bid in proc.blocks
    }
    linked = lowered.linked
    for index, (proc_name, src, dst) in enumerate(baseline.edge_trail):
        ref = (proc_name, src)
        kind = kinds[ref]
        if kind in (TerminatorKind.INDIRECT, TerminatorKind.RETURN):
            continue  # targets are runtime values, not lowered addresses
        lb = linked.block(proc_name, src)
        dst_addr = lowered.start_of[(proc_name, dst)]
        if kind is TerminatorKind.COND:
            branch_target = lowered.term_target.get(ref)
            if branch_target == dst_addr:
                continue  # taken path lands correctly
            reached = lowered.jump_target.get(ref, lb.end)
        elif kind is TerminatorKind.UNCOND:
            if ref in lowered.term_target:
                reached = lowered.term_target[ref]
            else:  # branch deleted by alignment: must fall through
                reached = lowered.jump_target.get(ref, lb.end)
        else:  # FALLTHROUGH
            reached = lowered.jump_target.get(ref, lb.end)
        if reached != dst_addr:
            out.append(Divergence(
                "address-replay", index,
                _fmt_block((proc_name, dst)),
                lowered.resolve(reached),
                f"lowered code for block {_fmt_block(ref)} transfers to "
                f"{reached:#x}, {_fmt_block((proc_name, dst))} lives at "
                f"{dst_addr:#x}",
            ))
            if len(out) >= MAX_DIVERGENCES:
                break
    return out


def _observed_edits(program: Program, lowered: _LoweredView):
    """Edits visible in a lowered image, per procedure.

    Returns ``(cond_target, jumps, missing_terminator)`` where
    ``cond_target[(proc, bid)]`` is the address a conditional's lowered
    branch targets, ``jumps[(proc, bid)]`` the address an appended jump
    targets, and ``missing_terminator`` the unconditional blocks lowered
    without their branch instruction.  Targets stay raw addresses —
    several blocks can share one start address when a block lowers to
    zero bytes, so resolution to a single block would be ambiguous.
    """
    cond_target: Dict[BlockRef, int] = {}
    jumps: Dict[BlockRef, int] = {}
    missing: set = set()
    for proc in program:
        for bid in proc.blocks:
            ref = (proc.name, bid)
            kind = proc.block(bid).kind
            if ref in lowered.jump_target:
                jumps[ref] = lowered.jump_target[ref]
            if kind is TerminatorKind.COND:
                target = lowered.term_target.get(ref)
                if target is not None:
                    cond_target[ref] = target
            elif kind is TerminatorKind.UNCOND and ref not in lowered.term_target:
                missing.add(ref)
    return cond_target, jumps, missing


def _same_destination(
    al_view: _LoweredView,
    al_addr: Optional[int],
    id_view: _LoweredView,
    id_addr: Optional[int],
) -> bool:
    """Do two branch-target addresses name the same block?

    Each address is interpreted in its own image.  An address names
    every block starting there — zero-size blocks overlap the block
    they fall into, and a branch to the shared address reaches both —
    so the targets agree when the block sets intersect.
    """
    if al_addr is None or id_addr is None:
        return al_addr == id_addr
    a = al_view.blocks_at.get(al_addr, [])
    b = id_view.blocks_at.get(id_addr, [])
    return bool(set(a) & set(b))


def _check_edit_agreement(
    program: Program, layout: ProgramLayout, lowered: _LoweredView
) -> List[Divergence]:
    """``isa.diff``'s reported edits must match the lowered code."""
    identity = ProgramLayout.identity(program)
    diffs = {d.name: d for d in diff_layouts(identity, layout)}
    id_view = _LoweredView(link_identity(program))
    id_cond, id_jumps, id_missing = _observed_edits(program, id_view)
    al_cond, al_jumps, al_missing = _observed_edits(program, lowered)

    out: List[Divergence] = []

    def report(expected: str, actual: str, detail: str) -> bool:
        out.append(Divergence("edit-agreement", None, expected, actual, detail))
        return len(out) >= MAX_DIVERGENCES

    for proc in program:
        diff = diffs[proc.name]
        reported_inverted = {(proc.name, bid) for bid in diff.inverted}
        observed_inverted = {
            ref for ref, target in al_cond.items()
            if ref[0] == proc.name
            and not _same_destination(lowered, target, id_view, id_cond.get(ref))
        }
        for ref in sorted(reported_inverted ^ observed_inverted):
            where = "reported" if ref in reported_inverted else "observed"
            if report(
                f"{_fmt_block(ref)} inverted in report and code",
                f"inversion only {where}",
                "diff report and lowered branch sense disagree",
            ):
                return out

        reported_jumps = {
            (proc.name, bid): (proc.name, target)
            for bid, target in id_jumps_of(diff, identity[proc.name]).items()
        }
        observed_jumps = {
            ref: target for ref, target in al_jumps.items() if ref[0] == proc.name
        }
        for ref in sorted(set(reported_jumps) | set(observed_jumps)):
            want, got = reported_jumps.get(ref), observed_jumps.get(ref)
            agrees = (
                want is None and got is None
            ) or (
                want is not None and got is not None
                and want in lowered.blocks_at.get(got, [])
            )
            if not agrees:
                if report(
                    f"jump {_fmt_block(ref)} -> "
                    + (_fmt_block(want) if want else "absent"),
                    f"jump -> "
                    + (lowered.resolve(got) if got is not None else "absent"),
                    "reported jump edits disagree with lowered jumps",
                ):
                    return out

        reported_missing = (
            {(proc.name, bid) for bid in identity[proc.name].removed_branches()}
            - {(proc.name, bid) for bid in diff.branches_restored}
        ) | {(proc.name, bid) for bid in diff.branches_removed}
        observed_missing = {ref for ref in al_missing if ref[0] == proc.name}
        for ref in sorted(reported_missing ^ observed_missing):
            where = "reported" if ref in reported_missing else "observed"
            if report(
                f"{_fmt_block(ref)} branch deleted in report and code",
                f"deletion only {where}",
                "reported branch deletions disagree with lowered code",
            ):
                return out
    return out


def id_jumps_of(diff, identity_layout) -> Dict[BlockId, BlockId]:
    """The jump set the diff report claims the aligned layout has."""
    jumps = dict(identity_layout.inserted_jumps())
    for bid, _target in diff.jumps_removed:
        jumps.pop(bid, None)
    for bid, target in diff.jumps_added:
        jumps[bid] = target
    return jumps


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def verify_layout(
    program: Program,
    profile: EdgeProfile,
    layout: ProgramLayout,
    seed: int = 0,
    label: str = "aligned",
    baseline: Optional[TraceCapture] = None,
    max_events: Optional[int] = None,
    decisions=None,
) -> OracleReport:
    """Differentially verify one aligned layout against the original.

    ``baseline`` lets callers capture the original trace once and verify
    many layouts against it; ``profile`` must be the edge profile the
    aligner consumed (collected on the original binary with ``seed``).
    ``decisions`` (a :class:`~repro.sim.decisions.DecisionTrace`) replays
    the shared decision stream through both images instead of
    re-executing each one.
    """
    if baseline is None:
        baseline = capture_trace(
            link_identity(program), seed=seed, max_events=max_events,
            decisions=decisions,
        )
    aligned_linked = link(layout)
    aligned = capture_trace(
        aligned_linked, seed=seed, max_events=max_events, trail=False,
        decisions=decisions,
    )
    lowered = _LoweredView(aligned_linked)

    divergences: List[Divergence] = []
    divergences += _check_block_sequence(baseline, aligned)
    divergences += _check_branch_sense(baseline, aligned, layout)
    divergences += _check_flow_conservation(profile, aligned)
    divergences += _check_address_replay(program, baseline, lowered)
    divergences += _check_edit_agreement(program, layout, lowered)
    return OracleReport(
        label=label,
        blocks_compared=len(baseline.blocks),
        edges_replayed=len(baseline.edge_trail),
        divergences=divergences,
    )


def alignment_layouts(
    program: Program,
    profile: EdgeProfile,
    window: int = 15,
    models: Sequence[str] = ("fallthrough", "btfnt", "likely", "pht", "btb"),
    include_greedy: bool = True,
    include_greedy_btfnt: bool = True,
    min_weight: int = 2,
    algorithms: Optional[Sequence[str]] = None,
) -> Dict[str, ProgramLayout]:
    """The labelled layouts a Tables-3/4 style run produces.

    Every non-identity algorithm in the aligner registry contributes its
    variants' layouts, keyed by variant label ("greedy", "greedy-btfnt",
    "try15-pht", "exttsp", ...), so new registrations flow through the
    differential oracle and the bisimulation prover without changes
    here.  ``algorithms`` restricts the set (None = whole registry); the
    legacy ``models``/``include_greedy``/``include_greedy_btfnt`` knobs
    shape the architecture mask handed to the planner, preserving the
    historical label set for existing callers.
    """
    full_mask = tuple(a for served in TRY_MODEL_ARCHS.values() for a in served)
    greedy_mask = tuple(
        a
        for a in full_mask
        if (include_greedy_btfnt if a == "btfnt" else include_greedy)
    )
    try_mask = tuple(a for m in models for a in TRY_MODEL_ARCHS[m])

    layouts: Dict[str, ProgramLayout] = {}
    names = tuple(algorithms) if algorithms is not None else aligner_names()
    for name in names:
        spec = get_spec(name)
        if spec.identity:
            continue  # the original layout is the oracle's baseline
        if spec.cost_models:
            mask = try_mask
        elif name == "greedy":
            mask = greedy_mask
        else:
            mask = full_mask
        plan = spec.plan(mask, window=window, min_weight=min_weight)
        for variant in plan.variants:
            layouts[variant.label] = variant.aligner.align(program, profile)
    return layouts


def verify_alignments(
    program: Program,
    profile: EdgeProfile,
    layouts: Dict[str, ProgramLayout],
    seed: int = 0,
    max_events: Optional[int] = None,
    decisions=None,
) -> List[OracleReport]:
    """Verify several labelled layouts against one shared baseline.

    The program executes exactly once: its decision trace is captured
    (unless ``decisions`` hands one in) and replayed to produce the
    baseline capture *and* every aligned capture — N layouts cost one
    execution, and baseline/aligned comparability is by construction.
    """
    if decisions is None:
        from ..sim.decisions import capture_decisions

        decisions = capture_decisions(program, seed=seed)
    baseline = capture_trace(
        link_identity(program), seed=seed, max_events=max_events,
        decisions=decisions,
    )
    return [
        verify_layout(
            program, profile, layout,
            seed=seed, label=label, baseline=baseline, max_events=max_events,
            decisions=decisions,
        )
        for label, layout in layouts.items()
    ]
