"""Dynamic oracle for branch melding: observable event-stream replay.

The alignment oracle (:mod:`repro.oracle.oracle`) judges layouts by
*block-sequence identity*, which is exactly right when the CFG is
unchanged.  Melding removes blocks, so that oracle cannot apply; what
melding must preserve is the program's **observable event stream** —
the dynamic counterpart of the prover's observation alphabet:

* runs of straight-line operations (coalesced across control
  transfers — branch instructions themselves are unobservable);
* direct calls, by callee symbol, at their exact instruction offsets;
* indirect calls (whose dynamically chosen callee shows up in the
  stream through the callee's own observables);
* returns.

Conditional outcomes and block ids are deliberately *not* events:
they are the things melding is allowed to erase.  The comparison is
sound because decision behaviours are seeded per surviving site, so
removing one site leaves every other site's decision stream intact —
any semantic damage surfaces as an ops/call/return mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..cfg import BlockId, Program, TerminatorKind
from ..isa.encoder import link_identity
from ..sim.executor import execute

#: Context window (tokens) reported around the first divergence.
_WINDOW = 4


@dataclass(frozen=True)
class MeldDivergence:
    """The first point where two observation streams disagree."""

    index: int
    original: Tuple[str, ...]
    melded: Tuple[str, ...]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "original": list(self.original),
            "melded": list(self.melded),
        }


@dataclass
class MeldOracleReport:
    """Verdict of one original-vs-melded stream comparison."""

    benchmark: str
    passed: bool
    events_original: int
    events_melded: int
    instructions_original: int
    instructions_melded: int
    divergence: Optional[MeldDivergence] = None
    seed: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "passed": self.passed,
            "events_original": self.events_original,
            "events_melded": self.events_melded,
            "instructions_original": self.instructions_original,
            "instructions_melded": self.instructions_melded,
            "divergence": (
                self.divergence.to_dict() if self.divergence else None
            ),
            "seed": self.seed,
        }


class _Recorder:
    """Builds the observation stream from the executor's block hook.

    Per visited block, tokens are derived from the block's static
    shape: straight-line ops accumulate into an open run, flushed at
    every call site; a return block appends ``ret`` after its body.
    An indirect call records ``icall`` — the chosen callee then speaks
    for itself through its own blocks' tokens.
    """

    def __init__(self, program: Program):
        self.tokens: List[str] = []
        self._ops = 0
        self._plans: Dict[Tuple[str, BlockId], Tuple[Tuple[str, int], ...]] = {}
        for proc in program:
            for bid, block in proc.blocks.items():
                plan: List[Tuple[str, int]] = []
                position = 0
                for call in block.calls:
                    gap = call.offset - position
                    if gap:
                        plan.append(("ops", gap))
                    if call.is_indirect:
                        plan.append(("icall", 0))
                    else:
                        plan.append((f"call:{call.callee}", 0))
                    position = call.offset + 1
                tail = block.straightline_size - position
                if tail:
                    plan.append(("ops", tail))
                if block.kind is TerminatorKind.RETURN:
                    plan.append(("ret", 0))
                self._plans[(proc.name, bid)] = tuple(plan)

    def _flush(self) -> None:
        if self._ops:
            self.tokens.append(f"ops:{self._ops}")
            self._ops = 0

    def on_block(self, proc_name: str, bid: BlockId) -> None:
        for token, count in self._plans[(proc_name, bid)]:
            if token == "ops":
                self._ops += count
            else:
                self._flush()
                self.tokens.append(token)

    def finish(self) -> List[str]:
        self._flush()
        return self.tokens


def capture_observations(
    program: Program, seed: int = 0, max_events: Optional[int] = None
) -> Tuple[List[str], int]:
    """Execute ``program`` and return (observation stream, instructions)."""
    linked = link_identity(program)
    recorder = _Recorder(program)
    result = execute(
        linked,
        block_hook=recorder.on_block,
        seed=seed,
        max_events=max_events,
    )
    return recorder.finish(), result.instructions


def verify_meld(
    original: Program,
    melded: Program,
    seed: int = 0,
    max_events: Optional[int] = None,
    benchmark: str = "",
) -> MeldOracleReport:
    """Execute both programs and compare their observation streams."""
    stream_original, instr_original = capture_observations(
        original, seed=seed, max_events=max_events
    )
    stream_melded, instr_melded = capture_observations(
        melded, seed=seed, max_events=max_events
    )
    divergence: Optional[MeldDivergence] = None
    if stream_original != stream_melded:
        index = 0
        limit = min(len(stream_original), len(stream_melded))
        while index < limit and stream_original[index] == stream_melded[index]:
            index += 1
        lo = max(index - _WINDOW, 0)
        hi = index + _WINDOW
        divergence = MeldDivergence(
            index=index,
            original=tuple(stream_original[lo:hi]),
            melded=tuple(stream_melded[lo:hi]),
        )
    return MeldOracleReport(
        benchmark=benchmark,
        passed=divergence is None,
        events_original=len(stream_original),
        events_melded=len(stream_melded),
        instructions_original=instr_original,
        instructions_melded=instr_melded,
        divergence=divergence,
        seed=seed,
    )
