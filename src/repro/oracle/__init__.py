"""Differential layout oracle: prove aligned binaries replay the
original dynamic instruction stream (see :mod:`repro.oracle.oracle`)."""

from .capture import BlockRef, TraceCapture, capture_trace
from .oracle import (
    MAX_DIVERGENCES,
    Divergence,
    OracleReport,
    alignment_layouts,
    verify_alignments,
    verify_layout,
)
from .report import render_oracle_reports, summarize_failures

__all__ = [
    "BlockRef",
    "Divergence",
    "MAX_DIVERGENCES",
    "OracleReport",
    "TraceCapture",
    "alignment_layouts",
    "capture_trace",
    "render_oracle_reports",
    "summarize_failures",
    "verify_alignments",
    "verify_layout",
]
