"""Rendering for oracle verdicts: human report and failure summaries."""

from __future__ import annotations

from typing import List, Sequence

from .oracle import OracleReport


def render_oracle_reports(reports: Sequence[OracleReport]) -> str:
    """A PASS/FAIL line per verified layout, with divergence details."""
    lines: List[str] = []
    width = max((len(r.label) for r in reports), default=0)
    for report in reports:
        lines.append(
            f"{report.status:<4}  {report.label:<{width}}  "
            f"{report.blocks_compared:,} blocks, "
            f"{report.edges_replayed:,} transfers replayed, "
            f"{len(report.divergences)} divergence(s)"
        )
        for divergence in report.divergences:
            lines.append(f"      - {divergence}")
    failed = sum(1 for r in reports if not r.passed)
    lines.append(
        f"{len(reports) - failed}/{len(reports)} layouts trace-isomorphic"
        + (f" — {failed} FAILED" if failed else "")
    )
    return "\n".join(lines)


def summarize_failures(reports: Sequence[OracleReport]) -> str:
    """One-line-per-layout summary used in ValidationError messages."""
    parts: List[str] = []
    for report in reports:
        if report.passed:
            continue
        first = report.divergences[0]
        extra = len(report.divergences) - 1
        parts.append(
            f"layout {report.label!r} diverges: {first}"
            + (f" (+{extra} more)" if extra else "")
        )
    return "; ".join(parts)
