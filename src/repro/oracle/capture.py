"""Semantic trace capture for differential layout verification.

A :class:`TraceCapture` is the layout-independent record of one
execution: the dynamic block-visit sequence in stable ``(procedure,
block-id)`` coordinates, the emitted conditional-branch outcomes, and
the intra-procedural edge traversal counts.  Capturing the original
binary and an aligned binary with the same behaviour seed must yield
*isomorphic* captures — identical block sequences and edge counts, with
conditional outcomes differing only where the layout legitimately
inverted a branch sense.  The oracle (:mod:`repro.oracle.oracle`)
compares captures and explains any divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cfg import BlockId
from ..isa.encoder import LinkedProgram
from ..sim import trace as tr
from ..sim.executor import execute

#: A block in stable coordinates: (procedure name, block id).
BlockRef = Tuple[str, BlockId]


@dataclass
class TraceCapture:
    """Layout-independent record of one execution of a linked binary."""

    #: Dynamic block-visit sequence, in execution order.
    blocks: List[BlockRef] = field(default_factory=list)
    #: Per-execution conditional outcomes: (block, taken-bit-as-emitted).
    cond_outcomes: List[Tuple[BlockRef, bool]] = field(default_factory=list)
    #: Emitted unconditional-branch sites (layout-inserted jumps included).
    uncond_sites: List[BlockRef] = field(default_factory=list)
    #: Intra-procedural edge traversal counts: (proc, src, dst) -> count.
    edge_counts: Dict[Tuple[str, BlockId, BlockId], int] = field(default_factory=dict)
    #: Ordered intra-procedural edge traversals — the semantic decision
    #: sequence the oracle replays through an aligned image.
    edge_trail: List[Tuple[str, BlockId, BlockId]] = field(default_factory=list)
    instructions: int = 0
    events: int = 0

    def __len__(self) -> int:
        return len(self.blocks)


class _CaptureListener:
    """Event/block listener translating addresses back to block ids."""

    def __init__(self, linked: LinkedProgram, trail: bool = True):
        self.capture = TraceCapture()
        self.trail = trail
        self.site_to_block: Dict[int, BlockRef] = {}
        for proc_name, placed in linked.blocks.items():
            for bid, lb in placed.items():
                if lb.term_address is not None:
                    self.site_to_block[lb.term_address] = (proc_name, bid)
                if lb.jump_address is not None:
                    self.site_to_block[lb.jump_address] = (proc_name, bid)

    def on_block(self, proc_name: str, bid: BlockId) -> None:
        self.capture.blocks.append((proc_name, bid))

    def on_event(self, event: tr.Event) -> None:
        kind, site, _target, taken = event
        if kind == tr.COND:
            self.capture.cond_outcomes.append((self.site_to_block[site], taken))
        elif kind == tr.UNCOND:
            self.capture.uncond_sites.append(self.site_to_block[site])

    def hook(self, proc_name: str, src: BlockId, dst: BlockId) -> None:
        key = (proc_name, src, dst)
        self.capture.edge_counts[key] = self.capture.edge_counts.get(key, 0) + 1
        if self.trail:
            self.capture.edge_trail.append(key)


def capture_trace(
    linked: LinkedProgram,
    seed: int = 0,
    max_events: Optional[int] = None,
    trail: bool = True,
    decisions=None,
) -> TraceCapture:
    """Execute ``linked`` and record its semantic trace.

    Identical seeds replay identical inputs, so two captures of the same
    program under different layouts are directly comparable.  ``trail``
    keeps the ordered edge sequence; disable it for aligned-side captures
    where only counts and outcomes are compared (halves the memory).

    ``decisions`` replays a captured
    :class:`~repro.sim.decisions.DecisionTrace` through ``linked``
    instead of re-executing: one real execution then serves the baseline
    and every aligned layout (``seed`` is ignored — the trace already
    fixes the inputs).
    """
    listener = _CaptureListener(linked, trail=trail)
    if decisions is not None:
        from ..sim.replay import replay

        result = replay(
            linked,
            decisions,
            listeners=(listener,),
            profile_hook=listener.hook,
            block_hook=listener.on_block,
            max_events=max_events,
        )
    else:
        result = execute(
            linked,
            listeners=(listener,),
            profile_hook=listener.hook,
            block_hook=listener.on_block,
            seed=seed,
            max_events=max_events,
        )
    listener.capture.instructions = result.instructions
    listener.capture.events = result.events
    return listener.capture
