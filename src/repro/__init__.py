"""repro — a reproduction of Calder & Grunwald, "Reducing Branch Costs via
Branch Alignment" (ASPLOS-VI, 1994).

The package implements the paper's branch alignment algorithms (Greedy,
Cost, Try15) as a link-time layout transformation over a synthetic ISA,
plus every substrate the evaluation needs: a CFG model, an executor that
replays deterministic workloads, edge profiling, five branch-prediction
architecture families, the BEP/relative-CPI metrics, an Alpha AXP 21064
front-end timing model, and a 24-program synthetic benchmark suite.

Quickstart::

    import repro

    program = repro.generate_benchmark("eqntott", scale=0.2)
    profile = repro.profile_program(program)
    layout = repro.TryNAligner(repro.make_model("fallthrough")).align(program, profile)
    report = repro.simulate(repro.link(layout), profile)
    base = repro.simulate(repro.link_identity(program), profile)
    print(report.relative_cpi("fallthrough", base.instructions))
"""

from .analysis import (
    BenchmarkExperiment,
    compute_table2,
    render_figure4,
    render_table2,
    render_table3,
    render_table4,
    run_benchmark_experiment,
    run_figure4,
    run_suite_experiment,
)
from .cfg import (
    BasicBlock,
    CallSite,
    Edge,
    EdgeKind,
    Procedure,
    ProcedureBuilder,
    Program,
    ProgramBuilder,
    TerminatorKind,
    procedure_to_dot,
)
from .core import (
    Aligner,
    ArchModel,
    BranchCosts,
    ChainSet,
    CostAligner,
    GreedyAligner,
    OriginalAligner,
    TryNAligner,
    align_program,
    make_model,
)
from .isa import (
    LinkedProgram,
    ProcedureLayout,
    ProgramLayout,
    link,
    link_identity,
)
from .profiling import EdgeProfile, profile_program
from .runner import (
    BenchmarkFailure,
    FatalError,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    RunnerConfig,
    RunnerError,
    SuiteRunResult,
    TransientError,
    ValidationError,
    run_figure4_resilient,
    run_suite_resilient,
)
from .sim import (
    AlphaConfig,
    AlphaSim,
    SimulationReport,
    TraceStats,
    alpha_execution_cycles,
    default_architectures,
    execute,
    relative_cpi,
    simulate,
)
from .workloads import (
    SUITE,
    benchmark_names,
    build_suite,
    figure1_program,
    figure2_program,
    figure3_program,
    generate_benchmark,
)

__version__ = "1.0.0"

__all__ = [
    "Aligner",
    "AlphaConfig",
    "AlphaSim",
    "ArchModel",
    "BasicBlock",
    "BenchmarkExperiment",
    "BenchmarkFailure",
    "BranchCosts",
    "CallSite",
    "ChainSet",
    "CostAligner",
    "Edge",
    "EdgeKind",
    "EdgeProfile",
    "FatalError",
    "FaultPlan",
    "FaultSpec",
    "GreedyAligner",
    "LinkedProgram",
    "OriginalAligner",
    "Procedure",
    "ProcedureBuilder",
    "ProcedureLayout",
    "Program",
    "ProgramBuilder",
    "ProgramLayout",
    "RetryPolicy",
    "RunnerConfig",
    "RunnerError",
    "SUITE",
    "SimulationReport",
    "SuiteRunResult",
    "TerminatorKind",
    "TraceStats",
    "TransientError",
    "TryNAligner",
    "ValidationError",
    "align_program",
    "alpha_execution_cycles",
    "benchmark_names",
    "build_suite",
    "compute_table2",
    "default_architectures",
    "execute",
    "figure1_program",
    "figure2_program",
    "figure3_program",
    "generate_benchmark",
    "link",
    "link_identity",
    "make_model",
    "procedure_to_dot",
    "profile_program",
    "relative_cpi",
    "render_figure4",
    "render_table2",
    "render_table3",
    "render_table4",
    "run_benchmark_experiment",
    "run_figure4",
    "run_figure4_resilient",
    "run_suite_experiment",
    "run_suite_resilient",
    "simulate",
]
