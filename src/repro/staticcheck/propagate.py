"""Wu–Larus frequency propagation: site probabilities to flow counts.

The aligners do not consume branch probabilities — they consume *edge
weights*, because a 90%-taken branch executed twice matters less than a
60%-taken branch executed a million times.  This module turns the
per-site taken-probabilities of :mod:`repro.staticcheck.predict` into
synthetic block and edge frequencies by solving the CFG flow equations
the way Wu & Larus proposed:

* every edge gets a local branch probability (conditionals from the
  prediction, single-successor blocks 1.0, indirect jumps a uniform
  split);
* natural loops are solved innermost first: one symbolic pass through
  the loop body with the header pinned at frequency 1 yields the
  *cyclic probability* — the expected flow arriving back at the header
  per entry — and the header's true frequency is the geometric-series
  sum ``in_flow / (1 - cyclic_probability)``;
* the cyclic probability is damped below :data:`CP_MAX` so a
  (mis)predicted near-certain back edge yields a large finite trip
  count instead of an infinite one;
* a final pass over the whole procedure in reverse postorder assigns
  every block ``freq = in_flow`` (amplified at loop headers) and every
  edge ``freq(src) * prob(edge)``.

On a reducible CFG the result conserves flow *exactly* (up to damping
and float rounding): every block's frequency equals its in-flow plus
the entry injection, and equals its out-flow unless it returns.  That
invariant is what the RL023 lint pass and the Hypothesis property
tests check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..cfg import BlockId, Procedure, Program, TerminatorKind
from .dataflow import AnalysisManager, ProgramAnalyses
from .predict import DEFAULT_CONFIG, HeuristicConfig, PredictionReport, predict_program

__all__ = [
    "CP_MAX",
    "FrequencyMap",
    "edge_probabilities",
    "propagate_procedure",
    "propagate_program",
]

#: Cyclic-probability damping bound: a loop is never credited with more
#: than 1/(1 - CP_MAX) = 200 expected iterations per entry.
CP_MAX = 0.995

EdgeKey = Tuple[BlockId, BlockId]


@dataclass
class FrequencyMap:
    """Synthetic execution frequencies for one procedure."""

    procedure: str
    block_freq: Dict[BlockId, float] = field(default_factory=dict)
    edge_freq: Dict[EdgeKey, float] = field(default_factory=dict)
    #: Damped cyclic probability per natural-loop header.
    cyclic: Dict[BlockId, float] = field(default_factory=dict)
    #: Frequency injected at the procedure entry.
    entry_freq: float = 1.0
    #: The damping bound applied to cyclic probabilities; a header whose
    #: stored cyclic probability equals this bound was capped, and flow
    #: conservation legitimately breaks there by the truncated mass.
    cp_cap: float = CP_MAX

    def conservation_residuals(self, proc: Procedure) -> Dict[BlockId, float]:
        """Per-block |in-flow - frequency|, for the sanity lint and tests.

        In-flow counts every incoming edge frequency plus the entry
        injection; on a reducible CFG with undamped loops every residual
        is zero up to float error.
        """
        inflow: Dict[BlockId, float] = {bid: 0.0 for bid in proc.blocks}
        inflow[proc.entry] += self.entry_freq
        for (src, dst), freq in self.edge_freq.items():
            if dst in inflow:
                inflow[dst] += freq
        return {
            bid: abs(inflow[bid] - self.block_freq.get(bid, 0.0))
            for bid in proc.blocks
        }


def edge_probabilities(
    proc: Procedure, taken_probability: Mapping[BlockId, float]
) -> Dict[EdgeKey, float]:
    """Local transition probability of every CFG edge.

    Conditional sites missing from ``taken_probability`` fall back to an
    uninformative 0.5 split, so the propagation is total even when the
    predictor skipped a corrupted site.
    """
    probs: Dict[EdgeKey, float] = {}
    for block in proc:
        out = proc.out_edges(block.bid)
        if not out:
            continue
        if block.kind is TerminatorKind.COND:
            p = float(taken_probability.get(block.bid, 0.5))
            taken = proc.taken_edge(block.bid)
            fall = proc.fallthrough_edge(block.bid)
            if taken is None or fall is None:
                share = 1.0 / len(out)
                for edge in out:
                    probs[(edge.src, edge.dst)] = share
                continue
            probs[(taken.src, taken.dst)] = p
            probs[(fall.src, fall.dst)] = 1.0 - p
        elif block.kind is TerminatorKind.INDIRECT:
            share = 1.0 / len(out)
            for edge in out:
                probs[(edge.src, edge.dst)] = share
        else:
            for edge in out:
                probs[(edge.src, edge.dst)] = 1.0
    return probs


def _region_frequencies(
    blocks: List[BlockId],
    head: Optional[BlockId],
    preds: Dict[BlockId, List[BlockId]],
    probs: Dict[EdgeKey, float],
    back_edges: Set[EdgeKey],
    cyclic: Dict[BlockId, float],
    entry: BlockId,
    entry_freq: float,
) -> Dict[BlockId, float]:
    """One flow-equation pass over ``blocks`` (given in reverse postorder).

    ``head`` pins a loop header at frequency 1 (the symbolic
    cyclic-probability pass); ``head=None`` is the final whole-procedure
    pass, where the entry injects ``entry_freq``.  Back edges never
    contribute to in-flow — their mass lives in the headers' cached
    cyclic probabilities.
    """
    freq: Dict[BlockId, float] = {}
    members = set(blocks)
    for bid in blocks:
        if bid == head:
            freq[bid] = 1.0
            continue
        in_flow = 0.0
        if head is None and bid == entry:
            in_flow += entry_freq
        for pred in preds.get(bid, ()):
            if pred not in members or (pred, bid) in back_edges:
                continue
            in_flow += freq.get(pred, 0.0) * probs.get((pred, bid), 0.0)
        cp = cyclic.get(bid, 0.0)
        freq[bid] = in_flow / (1.0 - cp) if cp else in_flow
    return freq


def propagate_procedure(
    proc: Procedure,
    taken_probability: Mapping[BlockId, float],
    manager: Optional[AnalysisManager] = None,
    entry_freq: float = 1.0,
    cp_max: float = CP_MAX,
) -> FrequencyMap:
    """Solve the flow equations of one procedure."""
    if manager is None:
        manager = AnalysisManager(proc)
    if not 0.0 <= cp_max < 1.0:
        raise ValueError(f"cp_max must be in [0, 1), got {cp_max}")
    probs = edge_probabilities(proc, taken_probability)
    rpo = manager.rpo()
    rpo_index = {bid: i for i, bid in enumerate(rpo)}
    preds: Dict[BlockId, List[BlockId]] = {
        bid: [p for p in proc.predecessors(bid) if p in rpo_index]
        for bid in rpo
    }
    loops = manager.loops()
    back_edges: Set[EdgeKey] = set()
    for loop in loops:
        back_edges.update(loop.back_edges)
    # Any residual retreating edge (irreducible cycle) must also be cut,
    # or the single reverse-postorder pass would read unset frequencies.
    for bid in rpo:
        for pred in preds[bid]:
            if rpo_index[pred] >= rpo_index[bid]:
                back_edges.add((pred, bid))

    # Cyclic probability per header, innermost loop first (a nested
    # loop's body is a strict subset of its parent's, so size order is
    # nesting order).
    cyclic: Dict[BlockId, float] = {}
    for loop in sorted(loops, key=lambda lp: (lp.size, lp.header)):
        body = sorted(
            (b for b in loop.body if b in rpo_index), key=lambda b: rpo_index[b]
        )
        local = _region_frequencies(
            body, loop.header, preds, probs, back_edges, cyclic,
            proc.entry, entry_freq,
        )
        cp = sum(
            local.get(src, 0.0) * probs.get((src, dst), 0.0)
            for src, dst in loop.back_edges
        )
        cyclic[loop.header] = min(cp, cp_max)

    freq = _region_frequencies(
        rpo, None, preds, probs, back_edges, cyclic, proc.entry, entry_freq,
    )
    result = FrequencyMap(procedure=proc.name, entry_freq=entry_freq, cp_cap=cp_max)
    for bid in proc.blocks:
        result.block_freq[bid] = freq.get(bid, 0.0)
    for edge in proc.edges:
        result.edge_freq[(edge.src, edge.dst)] = (
            freq.get(edge.src, 0.0) * probs.get((edge.src, edge.dst), 0.0)
        )
    result.cyclic = cyclic
    return result


def propagate_program(
    program: Program,
    report: Optional[PredictionReport] = None,
    analyses: Optional[ProgramAnalyses] = None,
    entry_freq: float = 1.0,
    cp_max: float = CP_MAX,
    config: HeuristicConfig = DEFAULT_CONFIG,
) -> Dict[str, FrequencyMap]:
    """Predict (unless given a report) and propagate every procedure."""
    if analyses is None:
        analyses = ProgramAnalyses()
    if report is None:
        report = predict_program(program, analyses, config)
    out: Dict[str, FrequencyMap] = {}
    for proc in program:
        out[proc.name] = propagate_procedure(
            proc,
            report.taken_probabilities(proc.name),
            analyses.for_procedure(proc),
            entry_freq=entry_freq,
            cp_max=cp_max,
        )
    return out
