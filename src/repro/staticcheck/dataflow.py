"""Cached dataflow analyses for the verifier passes.

The underlying algorithms live in :mod:`repro.cfg.analysis`; this module
adds a per-procedure memoising façade so a dozen passes interrogating
the same procedure pay for reachability/dominators/loops once.  The
manager is deliberately defensive: it is handed *corrupted* CFGs by the
fault-injection harness, so every analysis tolerates dangling block ids
and duplicate order entries instead of crashing the lint run.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Callable, Dict, FrozenSet, List, Optional, Set, Tuple, TypeVar

from ..cfg import (
    BlockId,
    NaturalLoop,
    Procedure,
    immediate_dominators,
    immediate_postdominators,
    loop_depths,
    natural_loops,
    reverse_postorder,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .legality import BlockEffects, ObservationChain, RegionInfo

T = TypeVar("T")


def cfg_fingerprint(proc: Procedure) -> str:
    """A structural hash of one procedure's CFG.

    Covers everything the cached analyses can observe — block ids,
    sizes, terminator kinds, call sites (offset + callee symbol +
    indirection), layout order, and the edge list — and nothing they
    cannot (behaviour objects, labels).  Two procedures with equal
    fingerprints are indistinguishable to every analysis in this module,
    so they may safely share an :class:`AnalysisManager`.
    """
    digest = hashlib.sha256()
    digest.update(proc.name.encode())
    for bid in proc.original_order:
        block = proc.blocks.get(bid)
        if block is None:  # corrupted CFG: dangling order entry
            digest.update(f"|b{bid}:?".encode())
            continue
        digest.update(f"|b{bid}:{block.size}:{block.kind.value}".encode())
        for call in block.calls:
            callee = call.callee if call.callee is not None else "*"
            digest.update(f":c{call.offset}:{callee}".encode())
    for edge in sorted(
        proc.edges, key=lambda e: (e.src, e.dst, e.kind.value)
    ):
        digest.update(f"|e{edge.src}>{edge.dst}:{edge.kind.value}".encode())
    return digest.hexdigest()


class AnalysisManager:
    """Memoised CFG analyses for one procedure.

    Results are computed on first request and cached for the manager's
    lifetime; callers must not mutate returned containers.  A manager is
    valid only as long as the procedure it wraps is not mutated (CFGs in
    this codebase are immutable after construction, so in practice a
    manager never goes stale).
    """

    def __init__(self, proc: Procedure) -> None:
        self.proc = proc
        self._cache: Dict[str, object] = {}

    def _memo(self, key: str, compute: Callable[[], T]) -> T:
        if key not in self._cache:
            self._cache[key] = compute()
        return self._cache[key]  # type: ignore[return-value]

    def _analysable(self) -> Procedure:
        """The procedure, sanitised if structurally corrupt.

        The delegated algorithms assume a well-formed CFG (every edge
        endpoint tabled, the layout order a permutation).  A corrupted
        procedure — precisely what the lint run exists to diagnose —
        gets a pruned copy: dangling edges dropped, duplicate order
        entries collapsed.  Well-formed procedures pass through
        untouched, so analyses of healthy CFGs see the real object.
        """

        def compute() -> Procedure:
            proc = self.proc
            order = list(proc.original_order)
            clean_order = list(dict.fromkeys(order))
            clean_edges = [
                e for e in proc.edges
                if e.src in proc.blocks and e.dst in proc.blocks
            ]
            if clean_order == order and len(clean_edges) == len(proc.edges):
                return proc
            sanitised = Procedure.__new__(Procedure)
            sanitised.name = proc.name
            sanitised.blocks = dict(proc.blocks)
            sanitised._order = [b for b in clean_order if b in proc.blocks]
            sanitised.edges = clean_edges
            sanitised._out = {bid: [] for bid in sanitised.blocks}
            sanitised._in = {bid: [] for bid in sanitised.blocks}
            for edge in clean_edges:
                sanitised._out[edge.src].append(edge)
                sanitised._in[edge.dst].append(edge)
            return sanitised

        return self._memo("_analysable", compute)

    # -- reachability ---------------------------------------------------

    def reachable(self) -> Set[BlockId]:
        """Blocks reachable from the entry (defensive graph walk)."""

        def compute() -> Set[BlockId]:
            seen: Set[BlockId] = set()
            stack: List[BlockId] = [self.proc.entry]
            while stack:
                bid = stack.pop()
                if bid in seen or bid not in self.proc.blocks:
                    continue
                seen.add(bid)
                for succ in self.proc.successors(bid):
                    if succ not in seen:
                        stack.append(succ)
            return seen

        return self._memo("reachable", compute)

    def unreachable(self) -> List[BlockId]:
        reach = self.reachable()
        return [bid for bid in self.proc.blocks if bid not in reach]

    def rpo(self) -> List[BlockId]:
        """Reverse postorder over the reachable subgraph."""
        return self._memo("rpo", lambda: reverse_postorder(self._analysable()))

    # -- dominance ------------------------------------------------------

    def dominators(self) -> Dict[BlockId, Optional[BlockId]]:
        """Immediate-dominator tree (reachable blocks only)."""
        return self._memo("idom", lambda: immediate_dominators(self._analysable()))

    def postdominators(self) -> Dict[BlockId, Optional[BlockId]]:
        """Immediate-postdominator tree (blocks reaching an exit only)."""
        return self._memo(
            "ipdom", lambda: immediate_postdominators(self._analysable())
        )

    # -- loops ----------------------------------------------------------

    def loops(self) -> List[NaturalLoop]:
        return self._memo("loops", lambda: natural_loops(self._analysable()))

    def loop_depths(self) -> Dict[BlockId, int]:
        return self._memo("loop_depths", lambda: loop_depths(self._analysable()))

    # -- melding legality (kernels in repro.staticcheck.legality) -------

    def block_effects(self) -> Dict[BlockId, "BlockEffects"]:
        """Per-block side-effect / purity summaries."""
        from .legality import compute_block_effects

        return self._memo(
            "block_effects",
            lambda: compute_block_effects(self._analysable()),
        )

    def live_control_sites(self) -> Dict[BlockId, FrozenSet[BlockId]]:
        """Per-block liveness: control sites reachable from each block."""
        from .legality import compute_live_control_sites

        return self._memo(
            "live_control_sites",
            lambda: compute_live_control_sites(self._analysable()),
        )

    def site_chains(
        self,
    ) -> Dict[BlockId, Tuple["ObservationChain", "ObservationChain"]]:
        """(taken, fall) observation chains per conditional site."""
        from .legality import compute_site_chains

        return self._memo(
            "site_chains",
            lambda: compute_site_chains(self._analysable()),
        )

    def region_shapes(self) -> Dict[BlockId, "RegionInfo"]:
        """Triangle/diamond/complex region shape per conditional site."""
        from .legality import compute_region_shapes

        return self._memo(
            "region_shapes",
            lambda: compute_region_shapes(self._analysable(), self),
        )

    # -- bookkeeping ----------------------------------------------------

    @property
    def cached_analyses(self) -> Tuple[str, ...]:
        """Which analyses have been computed so far (for tests/tracing)."""
        return tuple(sorted(k for k in self._cache if not k.startswith("_")))


class ProgramAnalyses:
    """Lazy per-procedure :class:`AnalysisManager` pool for a program.

    Managers are keyed by :func:`cfg_fingerprint` rather than ``id()``:
    an ``id()`` key can be reused by the allocator after a procedure is
    garbage-collected, silently serving one procedure's cached
    dominators to a structurally different successor.  The structural
    key cannot go stale — and as a bonus, a transformed procedure that
    happens to be CFG-identical to one already analysed shares its
    cache instead of recomputing.
    """

    def __init__(self) -> None:
        self._managers: Dict[str, AnalysisManager] = {}

    def for_procedure(self, proc: Procedure) -> AnalysisManager:
        key = cfg_fingerprint(proc)
        manager = self._managers.get(key)
        if manager is None:
            manager = AnalysisManager(proc)
            self._managers[key] = manager
        return manager
