"""Cached dataflow analyses for the verifier passes.

The underlying algorithms live in :mod:`repro.cfg.analysis`; this module
adds a per-procedure memoising façade so a dozen passes interrogating
the same procedure pay for reachability/dominators/loops once.  The
manager is deliberately defensive: it is handed *corrupted* CFGs by the
fault-injection harness, so every analysis tolerates dangling block ids
and duplicate order entries instead of crashing the lint run.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple, TypeVar

from ..cfg import (
    BlockId,
    NaturalLoop,
    Procedure,
    immediate_dominators,
    immediate_postdominators,
    loop_depths,
    natural_loops,
    reverse_postorder,
)

T = TypeVar("T")


class AnalysisManager:
    """Memoised CFG analyses for one procedure.

    Results are computed on first request and cached for the manager's
    lifetime; callers must not mutate returned containers.  A manager is
    valid only as long as the procedure it wraps is not mutated (CFGs in
    this codebase are immutable after construction, so in practice a
    manager never goes stale).
    """

    def __init__(self, proc: Procedure) -> None:
        self.proc = proc
        self._cache: Dict[str, object] = {}

    def _memo(self, key: str, compute: Callable[[], T]) -> T:
        if key not in self._cache:
            self._cache[key] = compute()
        return self._cache[key]  # type: ignore[return-value]

    def _analysable(self) -> Procedure:
        """The procedure, sanitised if structurally corrupt.

        The delegated algorithms assume a well-formed CFG (every edge
        endpoint tabled, the layout order a permutation).  A corrupted
        procedure — precisely what the lint run exists to diagnose —
        gets a pruned copy: dangling edges dropped, duplicate order
        entries collapsed.  Well-formed procedures pass through
        untouched, so analyses of healthy CFGs see the real object.
        """

        def compute() -> Procedure:
            proc = self.proc
            order = list(proc.original_order)
            clean_order = list(dict.fromkeys(order))
            clean_edges = [
                e for e in proc.edges
                if e.src in proc.blocks and e.dst in proc.blocks
            ]
            if clean_order == order and len(clean_edges) == len(proc.edges):
                return proc
            sanitised = Procedure.__new__(Procedure)
            sanitised.name = proc.name
            sanitised.blocks = dict(proc.blocks)
            sanitised._order = [b for b in clean_order if b in proc.blocks]
            sanitised.edges = clean_edges
            sanitised._out = {bid: [] for bid in sanitised.blocks}
            sanitised._in = {bid: [] for bid in sanitised.blocks}
            for edge in clean_edges:
                sanitised._out[edge.src].append(edge)
                sanitised._in[edge.dst].append(edge)
            return sanitised

        return self._memo("_analysable", compute)

    # -- reachability ---------------------------------------------------

    def reachable(self) -> Set[BlockId]:
        """Blocks reachable from the entry (defensive graph walk)."""

        def compute() -> Set[BlockId]:
            seen: Set[BlockId] = set()
            stack: List[BlockId] = [self.proc.entry]
            while stack:
                bid = stack.pop()
                if bid in seen or bid not in self.proc.blocks:
                    continue
                seen.add(bid)
                for succ in self.proc.successors(bid):
                    if succ not in seen:
                        stack.append(succ)
            return seen

        return self._memo("reachable", compute)

    def unreachable(self) -> List[BlockId]:
        reach = self.reachable()
        return [bid for bid in self.proc.blocks if bid not in reach]

    def rpo(self) -> List[BlockId]:
        """Reverse postorder over the reachable subgraph."""
        return self._memo("rpo", lambda: reverse_postorder(self._analysable()))

    # -- dominance ------------------------------------------------------

    def dominators(self) -> Dict[BlockId, Optional[BlockId]]:
        """Immediate-dominator tree (reachable blocks only)."""
        return self._memo("idom", lambda: immediate_dominators(self._analysable()))

    def postdominators(self) -> Dict[BlockId, Optional[BlockId]]:
        """Immediate-postdominator tree (blocks reaching an exit only)."""
        return self._memo(
            "ipdom", lambda: immediate_postdominators(self._analysable())
        )

    # -- loops ----------------------------------------------------------

    def loops(self) -> List[NaturalLoop]:
        return self._memo("loops", lambda: natural_loops(self._analysable()))

    def loop_depths(self) -> Dict[BlockId, int]:
        return self._memo("loop_depths", lambda: loop_depths(self._analysable()))

    # -- bookkeeping ----------------------------------------------------

    @property
    def cached_analyses(self) -> Tuple[str, ...]:
        """Which analyses have been computed so far (for tests/tracing)."""
        return tuple(sorted(k for k in self._cache if not k.startswith("_")))


class ProgramAnalyses:
    """Lazy per-procedure :class:`AnalysisManager` pool for a program."""

    def __init__(self) -> None:
        self._managers: Dict[int, AnalysisManager] = {}

    def for_procedure(self, proc: Procedure) -> AnalysisManager:
        key = id(proc)
        manager = self._managers.get(key)
        if manager is None or manager.proc is not proc:
            manager = AnalysisManager(proc)
            self._managers[key] = manager
        return manager
