"""Verifier passes over CFGs, profiles and lowered layouts.

Each pass checks one invariant family and emits :class:`Diagnostic`
findings with a stable RL0xx code (see :mod:`.diagnostics`).  The
:class:`PassManager` runs the catalog over a :class:`LintContext`,
isolating each pass: malformed input that crashes a pass becomes an
``RL000`` finding on that pass instead of killing the lint run, so lint
always terminates with a report — the whole point of linting corrupt
artifacts.

Everything here is *static*: no trace replay, no behaviour execution.
The passes deliberately read the raw CFG attributes (``blocks``,
``edges``, ``original_order``) rather than trusting ``validate()``,
because the fault-injection harness hands them Procedure/Layout objects
assembled behind the constructors' backs — exactly how a real rewriter
bug would manifest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..cfg import EdgeKind, Procedure, Program, TerminatorKind
from ..cfg.blocks import expected_edge_kinds
from ..isa.encoder import INSTRUCTION_BYTES, TEXT_BASE, LinkedProgram
from ..isa.layout import ProcedureLayout, ProgramLayout
from ..profiling.edge_profile import EdgeProfile
from .binary.encoding import pass_binary_encoding, pass_binary_recovery
from .dataflow import ProgramAnalyses
from .diagnostics import Diagnostic, LintReport, PassOutcome, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..transforms.meld import AppliedMeld


@dataclass
class MeldContext:
    """An applied meld under audit: before, after, and the transcript.

    The RL018–RL021 passes re-derive *every* legality fact from
    ``original`` plus the dominator/liveness/effect analyses — they
    never trust the transform that produced ``melded``, which is what
    lets them catch a forced illegal meld.
    """

    original: Program
    melded: Program
    records: Sequence["AppliedMeld"] = ()


@dataclass
class StaticContext:
    """A static-prediction run under audit (the RL022–RL024 passes).

    ``profile`` is the :class:`~repro.profiling.staticprofile.StaticProfile`
    whose prediction report and frequency maps the passes inspect.  The
    divergence (RL022) and calibration (RL024) passes additionally need
    the *measured* profile from :class:`LintContext` to compare against;
    the sanity pass (RL023) works from the static artefacts alone.
    """

    profile: Any  # StaticProfile; typed loosely to avoid an import cycle


@dataclass
class LintContext:
    """Everything one lint run inspects.

    ``layouts`` maps a human-readable label ("orig", "greedy",
    "try15-btb") to a :class:`ProgramLayout`; layout passes run once per
    label.  ``profile`` may be ``None`` when only structural CFG checks
    are wanted.  ``meld`` carries an applied branch-melding transcript
    for the RL018–RL021 audit passes; without it those passes skip.
    ``static`` carries a static-prediction run for the RL022–RL024
    audit passes; without it those passes skip.
    """

    program: Program
    profile: Optional[EdgeProfile] = None
    layouts: Dict[str, ProgramLayout] = field(default_factory=dict)
    analyses: ProgramAnalyses = field(default_factory=ProgramAnalyses)
    meld: Optional[MeldContext] = None
    static: Optional[StaticContext] = None

    def procedures(self) -> Iterator[Procedure]:
        for name in self.program.order:
            proc = self.program.procedures.get(name)
            if proc is not None:
                yield proc


#: A pass body: inspects the context, returns its findings.
PassFn = Callable[[LintContext], List[Diagnostic]]


@dataclass(frozen=True)
class VerifierPass:
    """One named verifier pass."""

    pass_id: str
    description: str
    run: PassFn
    #: Passes needing a profile/layouts/meld/static are skipped when absent.
    needs_profile: bool = False
    needs_layouts: bool = False
    needs_meld: bool = False
    needs_static: bool = False

    def applicable(self, ctx: LintContext) -> bool:
        if self.needs_profile and ctx.profile is None:
            return False
        if self.needs_layouts and not ctx.layouts:
            return False
        if self.needs_meld and ctx.meld is None:
            return False
        if self.needs_static and ctx.static is None:
            return False
        return True


def _diag(
    code: str,
    message: str,
    pass_id: str,
    severity: Severity = Severity.ERROR,
    procedure: Optional[str] = None,
    block: Optional[int] = None,
    layout: Optional[str] = None,
) -> Diagnostic:
    return Diagnostic(
        code=code,
        severity=severity,
        message=message,
        pass_id=pass_id,
        procedure=procedure,
        block=block,
        layout=layout,
    )


# ----------------------------------------------------------------------
# CFG structure passes
# ----------------------------------------------------------------------
def _pass_unique_blocks(ctx: LintContext) -> List[Diagnostic]:
    """RL001: block-id uniqueness and order/table agreement."""
    out: List[Diagnostic] = []
    for proc in ctx.procedures():
        order = list(proc.original_order)
        seen: Dict[int, int] = {}
        for bid in order:
            seen[bid] = seen.get(bid, 0) + 1
        for bid, count in sorted(seen.items()):
            if count > 1:
                out.append(_diag(
                    "RL001",
                    f"block {bid} appears {count} times in the layout order",
                    "cfg-unique-blocks", procedure=proc.name, block=bid,
                ))
            if bid not in proc.blocks:
                out.append(_diag(
                    "RL001",
                    f"ordered block {bid} missing from the block table",
                    "cfg-unique-blocks", procedure=proc.name, block=bid,
                ))
        for bid in sorted(set(proc.blocks) - set(order)):
            out.append(_diag(
                "RL001",
                f"block {bid} present in the block table but never ordered",
                "cfg-unique-blocks", procedure=proc.name, block=bid,
            ))
        for bid, block in proc.blocks.items():
            if block.bid != bid:
                out.append(_diag(
                    "RL001",
                    f"block table maps id {bid} to a block labelled {block.bid}",
                    "cfg-unique-blocks", procedure=proc.name, block=bid,
                ))
    return out


def _pass_entry(ctx: LintContext) -> List[Diagnostic]:
    """RL002: a unique, known entry block laid out first."""
    out: List[Diagnostic] = []
    for proc in ctx.procedures():
        if not proc.original_order:
            out.append(_diag(
                "RL002", "procedure has no blocks", "cfg-entry",
                procedure=proc.name,
            ))
            continue
        entry = proc.original_order[0]
        if entry not in proc.blocks:
            out.append(_diag(
                "RL002",
                f"entry block {entry} missing from the block table",
                "cfg-entry", procedure=proc.name, block=entry,
            ))
    return out


def _pass_terminators(ctx: LintContext) -> List[Diagnostic]:
    """RL003: out-edge multiset legal for each block's terminator kind."""
    out: List[Diagnostic] = []
    for proc in ctx.procedures():
        by_src: Dict[int, List[EdgeKind]] = {bid: [] for bid in proc.blocks}
        for edge in proc.edges:
            if edge.src in by_src:
                by_src[edge.src].append(edge.kind)
        for bid, block in sorted(proc.blocks.items()):
            kinds = tuple(sorted(by_src[bid], key=lambda k: k.value))
            legal = expected_edge_kinds(block.kind)
            if block.kind is TerminatorKind.INDIRECT:
                ok = len(kinds) >= 1 and all(k is EdgeKind.INDIRECT for k in kinds)
            else:
                ok = kinds in legal
            if not ok:
                out.append(_diag(
                    "RL003",
                    f"{block.kind.value} block has out-edge kinds "
                    f"[{', '.join(k.value for k in kinds)}]",
                    "cfg-terminators", procedure=proc.name, block=bid,
                ))
                continue
            if block.kind is TerminatorKind.COND:
                targets = [e.dst for e in proc.edges if e.src == bid
                           and e.kind in (EdgeKind.TAKEN, EdgeKind.FALLTHROUGH)]
                if len(set(targets)) != len(targets):
                    out.append(_diag(
                        "RL003",
                        "conditional branch has identical taken and "
                        "fall-through targets",
                        "cfg-terminators", procedure=proc.name, block=bid,
                    ))
            ft = [e for e in proc.edges
                  if e.src == bid and e.kind is EdgeKind.FALLTHROUGH]
            if any(e.dst == bid for e in ft):
                out.append(_diag(
                    "RL003", "block falls through to itself",
                    "cfg-terminators", procedure=proc.name, block=bid,
                ))
    return out


def _pass_edge_resolution(ctx: LintContext) -> List[Diagnostic]:
    """RL004: every edge endpoint names a block that exists."""
    out: List[Diagnostic] = []
    for proc in ctx.procedures():
        for edge in proc.edges:
            if edge.src not in proc.blocks:
                out.append(_diag(
                    "RL004",
                    f"edge {edge.src}->{edge.dst} has unknown source block",
                    "cfg-edge-resolution", procedure=proc.name, block=edge.src,
                ))
            if edge.dst not in proc.blocks:
                out.append(_diag(
                    "RL004",
                    f"edge {edge.src}->{edge.dst} targets unknown block "
                    f"{edge.dst}",
                    "cfg-edge-resolution", procedure=proc.name, block=edge.src,
                ))
    return out


def _pass_reachability(ctx: LintContext) -> List[Diagnostic]:
    """RL007 (warning): blocks unreachable from the procedure entry."""
    out: List[Diagnostic] = []
    for proc in ctx.procedures():
        manager = ctx.analyses.for_procedure(proc)
        for bid in manager.unreachable():
            out.append(_diag(
                "RL007",
                "block is unreachable from the procedure entry",
                "cfg-reachability", severity=Severity.WARNING,
                procedure=proc.name, block=bid,
            ))
    return out


# ----------------------------------------------------------------------
# Profile passes
# ----------------------------------------------------------------------
def _pass_profile_consistency(ctx: LintContext) -> List[Diagnostic]:
    """RL008: profiled edges must exist in the CFG, with sane counts."""
    assert ctx.profile is not None
    out: List[Diagnostic] = []
    for proc_name in sorted(ctx.profile.procedures()):
        if proc_name not in ctx.program:
            out.append(_diag(
                "RL008",
                f"profiled procedure {proc_name!r} not in the program",
                "profile-consistency", procedure=proc_name,
            ))
            continue
        proc = ctx.program.procedure(proc_name)
        known = {(e.src, e.dst) for e in proc.edges}
        for (src, dst), count in sorted(ctx.profile.proc_edges(proc_name).items()):
            if count < 0:
                out.append(_diag(
                    "RL008",
                    f"edge {src}->{dst} has negative count {count}",
                    "profile-consistency", procedure=proc_name, block=src,
                ))
            if (src, dst) not in known:
                out.append(_diag(
                    "RL008",
                    f"profiled edge {src}->{dst} not in the CFG",
                    "profile-consistency", procedure=proc_name, block=src,
                ))
    return out


def _pass_flow_conservation(ctx: LintContext) -> List[Diagnostic]:
    """RL009: per-block in-weight equals out-weight (entry/return aside)."""
    assert ctx.profile is not None
    out: List[Diagnostic] = []
    for proc in ctx.procedures():
        edges = ctx.profile.proc_edges(proc.name)
        if not edges:
            continue
        in_w: Dict[int, int] = {}
        out_w: Dict[int, int] = {}
        for (src, dst), count in edges.items():
            out_w[src] = out_w.get(src, 0) + count
            in_w[dst] = in_w.get(dst, 0) + count
        entry = proc.original_order[0] if proc.original_order else None
        for bid, block in sorted(proc.blocks.items()):
            inc, outc = in_w.get(bid, 0), out_w.get(bid, 0)
            if bid == entry:
                if inc > outc:
                    out.append(_diag(
                        "RL009",
                        f"entry in-weight {inc} exceeds out-weight {outc}",
                        "profile-flow", procedure=proc.name, block=bid,
                    ))
            elif block.kind is TerminatorKind.RETURN:
                if outc:
                    out.append(_diag(
                        "RL009",
                        f"return block has out-weight {outc}",
                        "profile-flow", procedure=proc.name, block=bid,
                    ))
            elif inc != outc:
                out.append(_diag(
                    "RL009",
                    f"in-weight {inc} != out-weight {outc}",
                    "profile-flow", procedure=proc.name, block=bid,
                ))
    return out


# ----------------------------------------------------------------------
# Layout / lowering passes
# ----------------------------------------------------------------------
def _proc_layouts(ctx: LintContext) -> Iterator[Tuple[str, ProcedureLayout]]:
    for label, layout in ctx.layouts.items():
        for name in layout.program.order:
            proc_layout = layout.layouts.get(name)
            if proc_layout is not None:
                yield label, proc_layout


def _pass_layout_permutation(ctx: LintContext) -> List[Diagnostic]:
    """RL011/RL002: every block placed exactly once, entry first."""
    out: List[Diagnostic] = []
    for label, proc_layout in _proc_layouts(ctx):
        proc = proc_layout.procedure
        placed = sorted(p.bid for p in proc_layout.placements)
        expected = sorted(proc.blocks)
        if placed != expected:
            missing = sorted(set(expected) - set(placed))
            extra = sorted(set(placed) - set(expected))
            dupes = sorted({b for b in placed if placed.count(b) > 1})
            parts = []
            if missing:
                parts.append(f"missing {missing}")
            if extra:
                parts.append(f"unknown {extra}")
            if dupes:
                parts.append(f"duplicated {dupes}")
            out.append(_diag(
                "RL011",
                "layout is not a permutation of the procedure's blocks"
                + (f" ({', '.join(parts)})" if parts else ""),
                "layout-permutation", procedure=proc.name, layout=label,
            ))
            continue
        if proc_layout.placements and proc.original_order:
            entry = proc.original_order[0]
            if proc_layout.placements[0].bid != entry:
                out.append(_diag(
                    "RL002",
                    f"entry block {entry} not placed first",
                    "layout-permutation", procedure=proc.name,
                    block=entry, layout=label,
                ))
    return out


def _cond_successors(proc: Procedure, bid: int) -> Optional[Tuple[int, int]]:
    """(taken, fallthrough) destinations of a conditional, or None."""
    taken = fall = None
    for edge in proc.edges:
        if edge.src != bid:
            continue
        if edge.kind is EdgeKind.TAKEN:
            taken = edge.dst
        elif edge.kind is EdgeKind.FALLTHROUGH:
            fall = edge.dst
    if taken is None or fall is None:
        return None
    return taken, fall


def _pass_fallthrough_adjacency(ctx: LintContext) -> List[Diagnostic]:
    """RL005: every implicit (fall-through) successor is placed next."""
    out: List[Diagnostic] = []
    for label, proc_layout in _proc_layouts(ctx):
        proc = proc_layout.procedure
        ids = [p.bid for p in proc_layout.placements]
        for idx, placement in enumerate(proc_layout.placements):
            block = proc.blocks.get(placement.bid)
            if block is None:
                continue  # layout-permutation reports this
            nxt = ids[idx + 1] if idx + 1 < len(ids) else None
            falls_off = None
            if block.kind is TerminatorKind.FALLTHROUGH:
                if placement.jump_target is None:
                    edge = next((e for e in proc.edges if e.src == placement.bid
                                 and e.kind is EdgeKind.FALLTHROUGH), None)
                    if edge is not None and edge.dst != nxt:
                        falls_off = edge.dst
            elif block.kind is TerminatorKind.COND:
                succ = _cond_successors(proc, placement.bid)
                if succ is not None and placement.jump_target is None:
                    taken, fall = succ
                    if placement.taken_target in (taken, fall):
                        other = fall if placement.taken_target == taken else taken
                        if other != nxt:
                            falls_off = other
            elif block.kind is TerminatorKind.UNCOND and placement.branch_removed:
                edge = next((e for e in proc.edges if e.src == placement.bid
                             and e.kind is EdgeKind.TAKEN), None)
                if edge is not None and edge.dst != nxt:
                    falls_off = edge.dst
            if falls_off is not None:
                out.append(_diag(
                    "RL005",
                    f"fall-through successor {falls_off} is not the next "
                    f"placed block ({nxt})",
                    "lower-fallthrough", procedure=proc.name,
                    block=placement.bid, layout=label,
                ))
    return out


def _pass_branch_sense(ctx: LintContext) -> List[Diagnostic]:
    """RL010: conditionals reach both successors exactly once as placed.

    A sense flip that keeps adjacency intact (the ``flip-sense`` fault)
    lands here: the placement's taken target and its implicit/jump side
    no longer cover the conditional's two CFG successors.
    """
    out: List[Diagnostic] = []
    for label, proc_layout in _proc_layouts(ctx):
        proc = proc_layout.procedure
        ids = [p.bid for p in proc_layout.placements]
        for idx, placement in enumerate(proc_layout.placements):
            block = proc.blocks.get(placement.bid)
            if block is None or block.kind is not TerminatorKind.COND:
                continue
            succ = _cond_successors(proc, placement.bid)
            if succ is None:
                continue  # cfg-terminators reports this
            taken, fall = succ
            if placement.taken_target not in (taken, fall):
                continue  # lower-transfer-targets reports this (RL012)
            nxt = ids[idx + 1] if idx + 1 < len(ids) else None
            reached = (placement.jump_target
                       if placement.jump_target is not None else nxt)
            if {placement.taken_target, reached} != {taken, fall}:
                out.append(_diag(
                    "RL010",
                    f"as placed, branch covers targets "
                    f"{{{placement.taken_target}, {reached}}} instead of "
                    f"successors {{{taken}, {fall}}} — the sense flip is "
                    f"not invertible",
                    "lower-branch-sense", procedure=proc.name,
                    block=placement.bid, layout=label,
                ))
    return out


def _pass_transfer_targets(ctx: LintContext) -> List[Diagnostic]:
    """RL012/RL004: placement targets resolve to the right blocks.

    A transfer pointed at a block that is not the corresponding CFG
    successor (the ``mutate-layout`` fault) is RL012; a target that is
    not a block at all is RL004.
    """
    out: List[Diagnostic] = []
    for label, proc_layout in _proc_layouts(ctx):
        proc = proc_layout.procedure

        def check_target(placement, field_name: str, target: int,
                         allowed: List[int], role: str) -> None:
            if target not in proc.blocks:
                out.append(_diag(
                    "RL004",
                    f"{role} targets unknown block {target}",
                    "lower-transfer-targets", procedure=proc.name,
                    block=placement.bid, layout=label,
                ))
            elif target not in allowed:
                out.append(_diag(
                    "RL012",
                    f"{role} retargeted at block {target}; CFG allows "
                    f"{sorted(set(allowed))}",
                    "lower-transfer-targets", procedure=proc.name,
                    block=placement.bid, layout=label,
                ))

        for placement in proc_layout.placements:
            block = proc.blocks.get(placement.bid)
            if block is None:
                continue
            succs = [e.dst for e in proc.edges if e.src == placement.bid]
            if block.kind is TerminatorKind.COND:
                succ = _cond_successors(proc, placement.bid)
                allowed = list(succ) if succ is not None else succs
                if placement.taken_target is not None:
                    check_target(placement, "taken_target",
                                 placement.taken_target, allowed,
                                 "conditional branch")
                if placement.jump_target is not None:
                    check_target(placement, "jump_target",
                                 placement.jump_target, allowed,
                                 "appended jump")
            elif block.kind is TerminatorKind.UNCOND:
                edge = next((e for e in proc.edges if e.src == placement.bid
                             and e.kind is EdgeKind.TAKEN), None)
                allowed = [edge.dst] if edge is not None else succs
                if placement.taken_target is not None:
                    check_target(placement, "taken_target",
                                 placement.taken_target, allowed,
                                 "unconditional branch")
            elif block.kind is TerminatorKind.FALLTHROUGH:
                edge = next((e for e in proc.edges if e.src == placement.bid
                             and e.kind is EdgeKind.FALLTHROUGH), None)
                allowed = [edge.dst] if edge is not None else succs
                if placement.jump_target is not None:
                    check_target(placement, "jump_target",
                                 placement.jump_target, allowed,
                                 "appended jump")
    return out


def _pass_addresses(ctx: LintContext) -> List[Diagnostic]:
    """RL006: lowered addresses tile the text segment without overlap."""
    out: List[Diagnostic] = []
    for label, layout in ctx.layouts.items():
        try:
            linked = LinkedProgram(layout)
        except Exception as exc:
            out.append(_diag(
                "RL006",
                f"layout could not be lowered to addresses: "
                f"{type(exc).__name__}: {exc}",
                "lower-addresses", layout=label,
            ))
            continue
        cursor = TEXT_BASE
        for name in linked.program.order:
            proc_layout = layout.layouts.get(name)
            placed = linked.blocks.get(name, {})
            if proc_layout is None:
                continue
            for placement in proc_layout.placements:
                lb = placed.get(placement.bid)
                if lb is None:
                    out.append(_diag(
                        "RL006", "placed block has no address",
                        "lower-addresses", procedure=name,
                        block=placement.bid, layout=label,
                    ))
                    continue
                if lb.start % INSTRUCTION_BYTES:
                    out.append(_diag(
                        "RL006",
                        f"start {lb.start:#x} not instruction-aligned",
                        "lower-addresses", procedure=name,
                        block=placement.bid, layout=label,
                    ))
                if lb.start != cursor:
                    word = "overlaps" if lb.start < cursor else "leaves a hole before"
                    out.append(_diag(
                        "RL006",
                        f"block at {lb.start:#x} {word} the expected "
                        f"address {cursor:#x}",
                        "lower-addresses", procedure=name,
                        block=placement.bid, layout=label,
                    ))
                for addr, role in ((lb.term_address, "terminator"),
                                   (lb.jump_address, "appended jump")):
                    if addr is not None and not lb.start <= addr < lb.end:
                        out.append(_diag(
                            "RL006",
                            f"{role} address {addr:#x} outside the block's "
                            f"range [{lb.start:#x}, {lb.end:#x})",
                            "lower-addresses", procedure=name,
                            block=placement.bid, layout=label,
                        ))
                cursor = lb.end
        if cursor != linked.text_end:
            out.append(_diag(
                "RL006",
                f"text segment ends at {linked.text_end:#x} but the "
                f"address walk reached {cursor:#x}",
                "lower-addresses", layout=label,
            ))
    return out


# ----------------------------------------------------------------------
# Branch-melding audit passes (RL018-RL021)
# ----------------------------------------------------------------------
def _meld_approvals(ctx: LintContext, proc: Procedure) -> Dict[int, Any]:
    """Analyzer-approved sites of one original procedure, re-derived."""
    from .legality import analyze_procedure, behavior_owners

    assert ctx.meld is not None
    owners = behavior_owners(ctx.meld.original.procedures.values())
    manager = ctx.analyses.for_procedure(proc)
    return {
        s.site: s
        for s in analyze_procedure(proc, manager, owners)
        if s.approved
    }


def _pass_meld_legality(ctx: LintContext) -> List[Diagnostic]:
    """RL018: applied melds must be analyzer-approved and faithfully applied."""
    out: List[Diagnostic] = []
    meld = ctx.meld
    assert meld is not None
    for record in meld.records:
        proc = meld.original.procedures.get(record.procedure)
        if proc is None:
            out.append(_diag(
                "RL018",
                f"meld transcript names unknown procedure {record.procedure!r}",
                "meld-legality",
            ))
            continue
        approvals = _meld_approvals(ctx, proc)
        verdict = approvals.get(record.site)
        if verdict is None:
            out.append(_diag(
                "RL018",
                f"meld at block {record.site} was not approved by the "
                "legality analyzer",
                "meld-legality", procedure=record.procedure,
                block=record.site,
            ))
        elif verdict.target != record.target:
            out.append(_diag(
                "RL018",
                f"meld at block {record.site} branches to {record.target} "
                f"but the analyzer approved the fall-through {verdict.target}",
                "meld-legality", procedure=record.procedure,
                block=record.site,
            ))
        melded_proc = meld.melded.procedures.get(record.procedure)
        if melded_proc is None:
            continue
        block = melded_proc.blocks.get(record.site)
        taken = (
            melded_proc.taken_edge(record.site) if block is not None else None
        )
        if (
            block is None
            or block.kind is not TerminatorKind.UNCOND
            or block.behavior is not None
            or taken is None
            or taken.dst != record.target
        ):
            out.append(_diag(
                "RL018",
                f"melded program does not reflect the recorded meld at "
                f"block {record.site}",
                "meld-legality", procedure=record.procedure,
                block=record.site,
            ))
    return out


def _pass_meld_liveness(ctx: LintContext) -> List[Diagnostic]:
    """RL019: a meld must only erase dead decision streams and dead blocks."""
    from .legality import behavior_owners, behavior_root

    out: List[Diagnostic] = []
    meld = ctx.meld
    assert meld is not None
    owners = behavior_owners(meld.original.procedures.values())
    for record in meld.records:
        proc = meld.original.procedures.get(record.procedure)
        if proc is None:
            continue
        site_block = proc.blocks.get(record.site)
        if site_block is not None:
            root = behavior_root(site_block.behavior)
            sharers = owners.get(id(root), []) if root is not None else []
            others = [o for o in sharers if o != (record.procedure, record.site)]
            if others:
                out.append(_diag(
                    "RL019",
                    f"melded site {record.site} shares its decision stream "
                    f"with live site(s) {others}",
                    "meld-liveness", procedure=record.procedure,
                    block=record.site,
                ))
        manager = ctx.analyses.for_procedure(proc)
        live = manager.live_control_sites()
        melded_proc = meld.melded.procedures.get(record.procedure)
        for bid in record.removed:
            if melded_proc is not None and bid in melded_proc.blocks:
                out.append(_diag(
                    "RL019",
                    f"block {bid} is recorded removed but survives the meld",
                    "meld-liveness", procedure=record.procedure, block=bid,
                ))
            removed_block = proc.blocks.get(bid)
            if removed_block is None:
                continue
            if removed_block.kind in (
                TerminatorKind.COND, TerminatorKind.INDIRECT
            ):
                # A decision site that was live on the erased arm is gone
                # wholesale; its seeded stream cannot be replayed.
                out.append(_diag(
                    "RL019",
                    f"meld erased live decision site {bid} "
                    f"(live-out of {sorted(live.get(bid, ()))})",
                    "meld-liveness", procedure=record.procedure, block=bid,
                ))
            root = behavior_root(removed_block.behavior)
            if root is not None and len(owners.get(id(root), [])) > 1:
                out.append(_diag(
                    "RL019",
                    f"removed block {bid} drives a shared decision stream",
                    "meld-liveness", procedure=record.procedure, block=bid,
                ))
    return out


def _pass_meld_effects(ctx: LintContext) -> List[Diagnostic]:
    """RL020: the surviving arm must replay the erased arm's side effects."""
    out: List[Diagnostic] = []
    meld = ctx.meld
    assert meld is not None
    for record in meld.records:
        proc = meld.original.procedures.get(record.procedure)
        if proc is None:
            continue
        manager = ctx.analyses.for_procedure(proc)
        chains = manager.site_chains()
        effects = manager.block_effects()
        pair = chains.get(record.site)
        if pair is None:
            continue  # not a conditional site; RL018 reports it
        taken, fall = pair
        calls_taken = [t for t in taken.observables if not t.startswith("ops:")]
        calls_fall = [t for t in fall.observables if not t.startswith("ops:")]
        if calls_taken != calls_fall:
            out.append(_diag(
                "RL020",
                f"meld at block {record.site} reorders observable calls: "
                f"taken arm {calls_taken} vs fall arm {calls_fall}",
                "meld-effects", procedure=record.procedure,
                block=record.site,
            ))
        for bid in record.removed:
            summary = effects.get(bid)
            if summary is not None and summary.indirect_calls:
                out.append(_diag(
                    "RL020",
                    f"removed block {bid} performs {summary.indirect_calls} "
                    "indirect call(s) whose targets cannot be replayed",
                    "meld-effects", procedure=record.procedure, block=bid,
                ))
    return out


def _pass_meld_region(ctx: LintContext) -> List[Diagnostic]:
    """RL021: recorded region shapes must match the dominator structure."""
    out: List[Diagnostic] = []
    meld = ctx.meld
    assert meld is not None
    for record in meld.records:
        proc = meld.original.procedures.get(record.procedure)
        if proc is None:
            continue
        manager = ctx.analyses.for_procedure(proc)
        region = manager.region_shapes().get(record.site)
        if region is None:
            out.append(_diag(
                "RL021",
                f"block {record.site} has no conditional region to meld",
                "meld-region", procedure=record.procedure, block=record.site,
            ))
            continue
        if region.shape != record.shape:
            out.append(_diag(
                "RL021",
                f"meld at block {record.site} recorded a {record.shape} "
                f"region but the dominator tree says {region.shape}",
                "meld-region", procedure=record.procedure, block=record.site,
            ))
        expected_action = (
            "if-convert" if record.shape == "triangle" else "meld"
        )
        if record.action != expected_action:
            out.append(_diag(
                "RL021",
                f"meld at block {record.site} pairs action "
                f"{record.action!r} with shape {record.shape!r}",
                "meld-region", procedure=record.procedure, block=record.site,
            ))
    return out


# ----------------------------------------------------------------------
# Static-prediction audit passes (RL022-RL024)
# ----------------------------------------------------------------------

#: Absolute probability gap above which RL022 flags a divergent site.
DIVERGENCE_GAP = 0.35
#: Minimum measured executions before a site's divergence is reported.
DIVERGENCE_MIN_WEIGHT = 8
#: Calibration: high-confidence sites must predict the measured majority
#: direction at least this often.
CALIBRATION_FLOOR = 0.75
#: Confidence at or above which a site counts as high-confidence.
CALIBRATION_CONFIDENCE = 0.80
#: Propagated flow residual tolerance, relative to the block frequency.
FLOW_TOLERANCE = 1e-6


def _static_sites(ctx: LintContext) -> Iterator[Tuple[Procedure, Any]]:
    """(procedure, SitePrediction) pairs of the context's static run."""
    assert ctx.static is not None
    report = ctx.static.profile.report
    if report is None:
        return
    for proc in ctx.procedures():
        for site in report.for_procedure(proc.name):
            if site.block in proc.blocks:
                yield proc, site


def _measured_mix(
    ctx: LintContext, proc: Procedure, bid: int
) -> Optional[Tuple[int, int]]:
    """Measured (taken, fall) weights of a conditional, or None."""
    assert ctx.profile is not None
    taken = proc.taken_edge(bid)
    fall = proc.fallthrough_edge(bid)
    if taken is None or fall is None:
        return None
    return (
        ctx.profile.weight(proc.name, bid, taken.dst),
        ctx.profile.weight(proc.name, bid, fall.dst),
    )


def _pass_predict_divergence(ctx: LintContext) -> List[Diagnostic]:
    """RL022: predicted vs measured taken-probability audit.

    Warnings, not errors: a heuristic predictor is *expected* to miss
    sites — the audit exists so a workload whose static profile is badly
    wrong is visible in ``repro lint`` instead of silently costing CPI.
    """
    out: List[Diagnostic] = []
    for proc, site in _static_sites(ctx):
        mix = _measured_mix(ctx, proc, site.block)
        if mix is None:
            continue
        w_taken, w_fall = mix
        weight = w_taken + w_fall
        if weight < DIVERGENCE_MIN_WEIGHT:
            continue
        measured = w_taken / weight
        gap = abs(site.p_taken - measured)
        if gap > DIVERGENCE_GAP:
            out.append(_diag(
                "RL022",
                f"predicted p(taken)={site.p_taken:.2f} "
                f"({'+'.join(site.heuristics)}) but the profile measured "
                f"{measured:.2f} over {weight} executions",
                "predict-divergence", severity=Severity.WARNING,
                procedure=proc.name, block=site.block,
            ))
    return out


def _pass_predict_sanity(ctx: LintContext) -> List[Diagnostic]:
    """RL023: probabilities legal, synthetic counts flow-conserved.

    These are hard invariants of the predictor/propagator pair, so any
    violation is an error: probabilities must be honest probabilities,
    votes must cite registered heuristics, and the propagated block
    frequencies must equal their in-flow (the Wu–Larus fixed point).
    """
    from .predict import HEURISTICS

    assert ctx.static is not None
    out: List[Diagnostic] = []
    known = set(HEURISTICS)
    for proc, site in _static_sites(ctx):
        if not 0.0 <= site.p_taken <= 1.0:
            out.append(_diag(
                "RL023",
                f"predicted probability {site.p_taken!r} outside [0, 1]",
                "predict-sanity", procedure=proc.name, block=site.block,
            ))
        for vote in site.votes:
            if vote.heuristic not in known:
                out.append(_diag(
                    "RL023",
                    f"vote cites unregistered heuristic {vote.heuristic!r}",
                    "predict-sanity", procedure=proc.name, block=site.block,
                ))
            if not 0.5 <= vote.hit_rate <= 1.0:
                out.append(_diag(
                    "RL023",
                    f"{vote.heuristic} hit-rate {vote.hit_rate!r} "
                    "outside [0.5, 1]",
                    "predict-sanity", procedure=proc.name, block=site.block,
                ))
    frequencies = ctx.static.profile.frequencies
    for proc in ctx.procedures():
        fmap = frequencies.get(proc.name)
        if fmap is None:
            continue
        for bid, freq in sorted(fmap.block_freq.items()):
            if freq < 0.0:
                out.append(_diag(
                    "RL023",
                    f"negative propagated frequency {freq!r}",
                    "predict-sanity", procedure=proc.name, block=bid,
                ))
        residuals = fmap.conservation_residuals(proc)
        for bid, residual in sorted(residuals.items()):
            bound = FLOW_TOLERANCE * max(fmap.block_freq.get(bid, 0.0), 1.0)
            damped = fmap.cyclic.get(bid, 0.0) >= fmap.cp_cap
            if residual > bound and not damped:
                out.append(_diag(
                    "RL023",
                    f"propagated flow not conserved: |in - freq| = "
                    f"{residual:.3e} exceeds {bound:.3e}",
                    "predict-sanity", procedure=proc.name, block=bid,
                ))
    return out


def _pass_predict_calibration(ctx: LintContext) -> List[Diagnostic]:
    """RL024: confidence calibration against the measured profile.

    Buckets the predictor's sites by confidence and reports each
    bucket's measured direction-agreement rate (INFO).  When the
    high-confidence bucket agrees on fewer than ``CALIBRATION_FLOOR`` of
    its weighted executions, the predictor is overconfident and the
    report escalates to a warning.
    """
    out: List[Diagnostic] = []
    buckets: Dict[str, List[Tuple[float, bool, int]]] = {
        "low": [], "mid": [], "high": [],
    }
    for proc, site in _static_sites(ctx):
        mix = _measured_mix(ctx, proc, site.block)
        if mix is None:
            continue
        w_taken, w_fall = mix
        weight = w_taken + w_fall
        if not weight:
            continue
        agree = site.predicts_taken == (w_taken > w_fall)
        conf = site.confidence
        key = (
            "high" if conf >= CALIBRATION_CONFIDENCE
            else "mid" if conf >= 0.4 else "low"
        )
        buckets[key].append((conf, agree, weight))
    parts: List[str] = []
    for key in ("high", "mid", "low"):
        entries = buckets[key]
        total = sum(w for _, _, w in entries)
        if not total:
            continue
        hit = sum(w for _, agree, w in entries if agree)
        parts.append(
            f"{key}: {len(entries)} site(s), "
            f"{100.0 * hit / total:.0f}% weighted agreement"
        )
    if parts:
        out.append(_diag(
            "RL024", "confidence calibration — " + "; ".join(parts),
            "predict-calibration", severity=Severity.INFO,
        ))
    high = buckets["high"]
    high_total = sum(w for _, _, w in high)
    if high_total:
        high_hit = sum(w for _, agree, w in high if agree)
        rate = high_hit / high_total
        if rate < CALIBRATION_FLOOR:
            out.append(_diag(
                "RL024",
                f"high-confidence sites agree with the measured direction "
                f"on only {100.0 * rate:.0f}% of weighted executions "
                f"(floor {100.0 * CALIBRATION_FLOOR:.0f}%) — the predictor "
                "is overconfident on this workload",
                "predict-calibration", severity=Severity.WARNING,
            ))
    return out


# ----------------------------------------------------------------------
# The catalog and the pass manager
# ----------------------------------------------------------------------
PASSES: Tuple[VerifierPass, ...] = (
    VerifierPass("cfg-unique-blocks", "block ids unique and consistently tabled",
                 _pass_unique_blocks),
    VerifierPass("cfg-entry", "entry block exists and is unique",
                 _pass_entry),
    VerifierPass("cfg-terminators", "out-edges legal for each terminator kind",
                 _pass_terminators),
    VerifierPass("cfg-edge-resolution", "every edge endpoint resolves",
                 _pass_edge_resolution),
    VerifierPass("cfg-reachability", "blocks reachable from the entry",
                 _pass_reachability),
    VerifierPass("profile-consistency", "profiled edges exist in the CFG",
                 _pass_profile_consistency, needs_profile=True),
    VerifierPass("profile-flow", "per-block profile flow conservation",
                 _pass_flow_conservation, needs_profile=True),
    VerifierPass("layout-permutation", "layouts place every block once, entry first",
                 _pass_layout_permutation, needs_layouts=True),
    VerifierPass("lower-fallthrough", "implicit successors placed adjacent",
                 _pass_fallthrough_adjacency, needs_layouts=True),
    VerifierPass("lower-branch-sense", "conditional sense flips are invertible",
                 _pass_branch_sense, needs_layouts=True),
    VerifierPass("lower-transfer-targets", "rewritten transfers hit CFG successors",
                 _pass_transfer_targets, needs_layouts=True),
    VerifierPass("lower-addresses", "addresses tile the text segment",
                 _pass_addresses, needs_layouts=True),
    VerifierPass("binary-encoding", "linked stream displacements and targets encode",
                 pass_binary_encoding, needs_layouts=True),
    VerifierPass("binary-recovery", "recovered binary CFG is consistent and covered",
                 pass_binary_recovery, needs_layouts=True),
    VerifierPass("meld-legality", "applied melds carry analyzer approval",
                 _pass_meld_legality, needs_meld=True),
    VerifierPass("meld-liveness", "melds erase only dead decision streams",
                 _pass_meld_liveness, needs_meld=True),
    VerifierPass("meld-effects", "surviving arms replay erased side effects",
                 _pass_meld_effects, needs_meld=True),
    VerifierPass("meld-region", "recorded region shapes match the dominators",
                 _pass_meld_region, needs_meld=True),
    VerifierPass("predict-divergence", "static prediction tracks the measured profile",
                 _pass_predict_divergence, needs_profile=True, needs_static=True),
    VerifierPass("predict-sanity", "static probabilities legal and flow-conserved",
                 _pass_predict_sanity, needs_static=True),
    VerifierPass("predict-calibration", "prediction confidence is calibrated",
                 _pass_predict_calibration, needs_profile=True, needs_static=True),
)


def pass_ids(
    passes: Tuple[VerifierPass, ...] = PASSES,
) -> Tuple[str, ...]:
    """All registered pass ids, in catalog order."""
    return tuple(p.pass_id for p in passes)


def pass_count(passes: Tuple[VerifierPass, ...] = PASSES) -> int:
    """Size of the pass registry (the single source of the pass count)."""
    return len(passes)


class PassManager:
    """Runs a pass catalog over a context, isolating pass crashes."""

    def __init__(self, passes: Tuple[VerifierPass, ...] = PASSES):
        self.passes = passes

    def run(self, ctx: LintContext, subject: str) -> LintReport:
        report = LintReport(subject=subject, layouts=list(ctx.layouts))
        for verifier_pass in self.passes:
            if not verifier_pass.applicable(ctx):
                continue
            outcome = PassOutcome(verifier_pass.pass_id, verifier_pass.description)
            try:
                outcome.findings = verifier_pass.run(ctx)
            except Exception as exc:
                outcome.crashed = True
                outcome.findings = [_diag(
                    "RL000",
                    f"pass crashed: {type(exc).__name__}: {exc}",
                    verifier_pass.pass_id,
                )]
            report.outcomes.append(outcome)
        return report


def run_lint(
    program: Program,
    profile: Optional[EdgeProfile] = None,
    layouts: Optional[Mapping[str, ProgramLayout]] = None,
    subject: str = "program",
    meld: Optional[MeldContext] = None,
    static: Optional[StaticContext] = None,
) -> LintReport:
    """Run the full verifier-pass catalog and return the report."""
    ctx = LintContext(
        program=program,
        profile=profile,
        layouts=dict(layouts or {}),
        meld=meld,
        static=static,
    )
    return PassManager().run(ctx, subject)
