"""Static legality analysis for branch-removal transforms.

Branch *alignment* rearranges conditional branches; branch *melding*
removes them.  A conditional site may only be removed when doing so is
invisible to every observer the reproduction cares about:

* the bisimulation prover (:mod:`repro.staticcheck.binary.equiv`), whose
  observable alphabet is coalesced runs of straight-line ops, direct
  calls by callee symbol, indirect calls, and the control-site kinds;
* the dynamic oracle, which executes the program and therefore also
  sees the *seeded decision streams* attached to each surviving site.

This module classifies every conditional site of a program as

* ``meldable`` — a diamond-shaped region whose two arms carry equal
  observation chains converging on the same join site;
* ``if-convertible`` — a triangle region whose side arm is pure glue
  (zero observables), so the branch can be converted to a straight
  fall-through path;
* ``blocked`` — removal would be observable; a machine-readable
  ``reason`` code says why.

The verdict rests on three new cached dataflow analyses hung off
:class:`repro.staticcheck.dataflow.AnalysisManager`:

* **observation chains** — an IR-level mirror of the prover's chain
  walk (``_Side._walk``): from each successor of a conditional site,
  follow fall-throughs and unconditional glue, collecting ``ops:N`` /
  ``call:SYM`` / ``icall`` tokens, until the next control site;
* **per-block liveness of decision sites** — a backward union dataflow
  computing, for every block, the set of control sites still reachable
  (live) from it;
* **side-effect summaries** — per-block purity facts (op counts, the
  direct-call sequence, indirect-call presence);

plus diamond/triangle **region detection** built on the existing
dominator/postdominator analyses.

The transform tier (:mod:`repro.transforms.meld`) applies melds only at
approved sites; the RL018–RL021 verifier passes re-derive every fact
here from scratch when auditing an applied meld.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from ..cfg import BlockId, Procedure, Program, TerminatorKind
from .dataflow import AnalysisManager, ProgramAnalyses

# --- verdicts ----------------------------------------------------------
MELDABLE = "meldable"
IF_CONVERTIBLE = "if-convertible"
BLOCKED = "blocked"

# --- machine-readable blocking reasons ---------------------------------
REASON_CHAINS_DIVERGE = "chains-diverge"
REASON_JOIN_MISMATCH = "join-mismatch"
REASON_LOOP_REGION = "loop-region"
REASON_SHARED_BEHAVIOR = "shared-behavior"
REASON_INDIRECT_CALL = "indirect-call-in-arm"

BLOCK_REASONS = (
    REASON_CHAINS_DIVERGE,
    REASON_JOIN_MISMATCH,
    REASON_LOOP_REGION,
    REASON_SHARED_BEHAVIOR,
    REASON_INDIRECT_CALL,
)

# --- region shapes -----------------------------------------------------
SHAPE_TRIANGLE = "triangle"
SHAPE_DIAMOND = "diamond"
SHAPE_COMPLEX = "complex"

#: Chain end kinds (mirrors the prover's site kinds plus ``divergent``).
CHAIN_COND = "cond"
CHAIN_INDIRECT = "indirect"
CHAIN_RETURN = "return"
CHAIN_DIVERGENT = "divergent"

_SITE_KINDS = {
    TerminatorKind.COND: CHAIN_COND,
    TerminatorKind.INDIRECT: CHAIN_INDIRECT,
    TerminatorKind.RETURN: CHAIN_RETURN,
}


@dataclass(frozen=True)
class ObservationChain:
    """An IR-level observation chain, token-compatible with the prover.

    ``observables`` holds coalesced ``ops:N`` / ``call:SYM`` / ``icall``
    tokens; ``end`` is the block id of the terminating control site (its
    straight-line body is *included* in the tokens, exactly as the
    binary-level walk consumes a site block's body before stopping at
    it).  ``path`` lists the glue blocks traversed before the end site.
    """

    observables: Tuple[str, ...]
    kind: str
    end: Optional[BlockId]
    path: Tuple[BlockId, ...]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "observables": list(self.observables),
            "kind": self.kind,
            "end": self.end,
            "path": list(self.path),
        }


@dataclass(frozen=True)
class BlockEffects:
    """Side-effect / purity summary of one basic block."""

    ops: int
    direct_calls: Tuple[str, ...]
    indirect_calls: int

    @property
    def pure(self) -> bool:
        """True when the block performs no calls at all."""
        return not self.direct_calls and not self.indirect_calls


@dataclass(frozen=True)
class RegionInfo:
    """Shape of the single-entry region hanging off a conditional site."""

    shape: str
    join: Optional[BlockId]
    taken_arm: Tuple[BlockId, ...]
    fall_arm: Tuple[BlockId, ...]


@dataclass(frozen=True)
class SiteLegality:
    """The analyzer's verdict for one conditional site."""

    procedure: str
    site: BlockId
    verdict: str
    shape: str
    reason: Optional[str]
    target: Optional[BlockId]
    taken_chain: ObservationChain
    fall_chain: ObservationChain

    @property
    def approved(self) -> bool:
        return self.verdict in (MELDABLE, IF_CONVERTIBLE)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "procedure": self.procedure,
            "site": self.site,
            "verdict": self.verdict,
            "shape": self.shape,
            "reason": self.reason,
            "target": self.target,
            "taken_chain": self.taken_chain.to_dict(),
            "fall_chain": self.fall_chain.to_dict(),
        }


@dataclass
class LegalityReport:
    """All per-site verdicts for one program."""

    sites: List[SiteLegality] = field(default_factory=list)

    def approved(self) -> List[SiteLegality]:
        return [s for s in self.sites if s.approved]

    def blocked(self) -> List[SiteLegality]:
        return [s for s in self.sites if not s.approved]

    def for_procedure(self, name: str) -> List[SiteLegality]:
        return [s for s in self.sites if s.procedure == name]

    def verdict_counts(self) -> Dict[str, int]:
        counts = {MELDABLE: 0, IF_CONVERTIBLE: 0, BLOCKED: 0}
        for site in self.sites:
            counts[site.verdict] += 1
        return counts

    def reason_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for site in self.sites:
            if site.reason is not None:
                counts[site.reason] = counts.get(site.reason, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sites": [s.to_dict() for s in self.sites],
            "verdicts": self.verdict_counts(),
            "reasons": self.reason_counts(),
        }


# ----------------------------------------------------------------------
# Cached analysis kernels (invoked through AnalysisManager._memo)
# ----------------------------------------------------------------------
def compute_block_effects(proc: Procedure) -> Dict[BlockId, BlockEffects]:
    """Side-effect summary per block."""
    out: Dict[BlockId, BlockEffects] = {}
    for bid, block in proc.blocks.items():
        direct = tuple(
            c.callee for c in block.calls if c.callee is not None
        )
        indirect = sum(1 for c in block.calls if c.is_indirect)
        ops = block.straightline_size - len(block.calls)
        out[bid] = BlockEffects(
            ops=max(ops, 0), direct_calls=direct, indirect_calls=indirect
        )
    return out


def compute_live_control_sites(
    proc: Procedure,
) -> Dict[BlockId, FrozenSet[BlockId]]:
    """Backward liveness: control sites still reachable from each block.

    A conditional/indirect site is *live* at block ``b`` when some path
    from ``b`` reaches it — i.e. its seeded decision stream can still be
    consumed downstream of ``b``.  Computed as a backward union dataflow
    to a fixpoint (the CFG may be cyclic).
    """
    live: Dict[BlockId, Set[BlockId]] = {bid: set() for bid in proc.blocks}
    for bid, block in proc.blocks.items():
        if block.kind in (TerminatorKind.COND, TerminatorKind.INDIRECT):
            live[bid].add(bid)
    changed = True
    while changed:
        changed = False
        for bid in proc.blocks:
            acc = live[bid]
            before = len(acc)
            for succ in proc.successors(bid):
                if succ in live:
                    acc |= live[succ]
            if len(acc) != before:
                changed = True
    return {bid: frozenset(acc) for bid, acc in live.items()}


def _block_tokens(
    proc: Procedure, bid: BlockId, observables: List[str], ops: int
) -> int:
    """Append one block's observable tokens; return the open ops run.

    Mirrors the prover's instruction loop: straight-line ops accumulate
    into a run that is flushed at every call token, and the terminator
    branch instruction (when present) is never observable.
    """
    block = proc.blocks[bid]
    position = 0
    for call in block.calls:
        ops += call.offset - position
        if ops:
            observables.append(f"ops:{ops}")
            ops = 0
        if call.is_indirect:
            observables.append("icall")
        else:
            observables.append(f"call:{call.callee}")
        position = call.offset + 1
    ops += block.straightline_size - position
    return ops


def chain_from(proc: Procedure, start: BlockId) -> ObservationChain:
    """Walk the observation chain beginning at block ``start``.

    Token-for-token compatible with the binary-level walk in
    :mod:`repro.staticcheck.binary.equiv`: fall-through blocks
    contribute their whole body, unconditional branches are silent glue
    contributing ``size - 1`` ops, and the walk stops *after* consuming
    the body of the first conditional / indirect / return block.
    """
    observables: List[str] = []
    path: List[BlockId] = []
    ops = 0
    visited: Set[BlockId] = set()
    bid = start
    while True:
        if bid in visited or bid not in proc.blocks:
            if ops:
                observables.append(f"ops:{ops}")
            return ObservationChain(
                tuple(observables), CHAIN_DIVERGENT, None, tuple(path)
            )
        visited.add(bid)
        block = proc.blocks[bid]
        ops = _block_tokens(proc, bid, observables, ops)
        site_kind = _SITE_KINDS.get(block.kind)
        if site_kind is not None:
            if ops:
                observables.append(f"ops:{ops}")
            return ObservationChain(
                tuple(observables), site_kind, bid, tuple(path)
            )
        path.append(bid)
        if block.kind is TerminatorKind.FALLTHROUGH:
            edge = proc.fallthrough_edge(bid)
        else:  # UNCOND: unobservable glue, follow silently.
            edge = proc.taken_edge(bid)
        if edge is None:
            if ops:
                observables.append(f"ops:{ops}")
            return ObservationChain(
                tuple(observables), CHAIN_DIVERGENT, None, tuple(path)
            )
        bid = edge.dst


def compute_site_chains(
    proc: Procedure,
) -> Dict[BlockId, Tuple[ObservationChain, ObservationChain]]:
    """(taken-chain, fall-chain) per conditional site."""
    chains: Dict[BlockId, Tuple[ObservationChain, ObservationChain]] = {}
    for bid, block in proc.blocks.items():
        if block.kind is not TerminatorKind.COND:
            continue
        taken = proc.taken_edge(bid)
        fall = proc.fallthrough_edge(bid)
        if taken is None or fall is None:  # corrupt CFG; lint will flag it
            continue
        chains[bid] = (
            chain_from(proc, taken.dst), chain_from(proc, fall.dst)
        )
    return chains


def _arm_blocks(
    proc: Procedure, start: BlockId, join: Optional[BlockId]
) -> Set[BlockId]:
    """Blocks reachable from ``start`` without passing through ``join``."""
    if start == join:
        return set()
    seen: Set[BlockId] = set()
    stack = [start]
    while stack:
        bid = stack.pop()
        if bid in seen or bid == join or bid not in proc.blocks:
            continue
        seen.add(bid)
        stack.extend(proc.successors(bid))
    return seen


def compute_region_shapes(
    proc: Procedure, manager: Optional[AnalysisManager] = None
) -> Dict[BlockId, RegionInfo]:
    """Classify the region at each conditional site via the ipdom tree.

    The *join* of a conditional site is its immediate postdominator.  A
    **triangle** has one successor equal to the join and a side arm that
    rejoins without looping back through the site; a **diamond** has two
    disjoint arms converging on the join; everything else — no join,
    overlapping arms, or a region containing the site itself — is
    **complex**.
    """
    if manager is None:
        manager = AnalysisManager(proc)
    ipdom = manager.postdominators()
    shapes: Dict[BlockId, RegionInfo] = {}
    for bid, block in proc.blocks.items():
        if block.kind is not TerminatorKind.COND:
            continue
        taken = proc.taken_edge(bid)
        fall = proc.fallthrough_edge(bid)
        if taken is None or fall is None:
            continue
        join = ipdom.get(bid)
        taken_arm = _arm_blocks(proc, taken.dst, join)
        fall_arm = _arm_blocks(proc, fall.dst, join)
        info = RegionInfo(
            shape=SHAPE_COMPLEX,
            join=join,
            taken_arm=tuple(sorted(taken_arm)),
            fall_arm=tuple(sorted(fall_arm)),
        )
        if join is not None and bid not in taken_arm and bid not in fall_arm:
            if taken.dst == join or fall.dst == join:
                info = RegionInfo(
                    SHAPE_TRIANGLE, join, info.taken_arm, info.fall_arm
                )
            elif not (taken_arm & fall_arm):
                info = RegionInfo(
                    SHAPE_DIAMOND, join, info.taken_arm, info.fall_arm
                )
        shapes[bid] = info
    return shapes


# ----------------------------------------------------------------------
# Program-wide behaviour sharing
# ----------------------------------------------------------------------
def behavior_root(behavior: Any) -> Any:
    """Unwrap decorator behaviours (``Inverted.inner`` chains)."""
    seen: Set[int] = set()
    while (
        behavior is not None
        and hasattr(behavior, "inner")
        and id(behavior) not in seen
    ):
        seen.add(id(behavior))
        behavior = behavior.inner
    return behavior


def behavior_owners(
    procedures: Iterable[Procedure],
) -> Dict[int, List[Tuple[str, BlockId]]]:
    """Map each root behaviour object (by id) to the sites that drive it.

    Two sites sharing one underlying behaviour (e.g. an unrolled copy
    wrapping the original's behaviour in ``Inverted``) consume a single
    decision stream; removing either desynchronises the other.
    """
    owners: Dict[int, List[Tuple[str, BlockId]]] = {}
    for proc in procedures:
        for bid, block in proc.blocks.items():
            root = behavior_root(block.behavior)
            if root is None:
                continue
            owners.setdefault(id(root), []).append((proc.name, bid))
    return owners


# ----------------------------------------------------------------------
# The legality verdict
# ----------------------------------------------------------------------
def _chains_equal(taken: ObservationChain, fall: ObservationChain) -> bool:
    return (
        taken.observables == fall.observables and taken.kind == fall.kind
    )


def _arms_indirect(
    effects: Mapping[BlockId, BlockEffects],
    taken: ObservationChain,
    fall: ObservationChain,
) -> bool:
    for bid in taken.path + fall.path:
        summary = effects.get(bid)
        if summary is not None and summary.indirect_calls:
            return True
    return False


def classify_site(
    proc: Procedure,
    site: BlockId,
    taken: ObservationChain,
    fall: ObservationChain,
    region: Optional[RegionInfo],
    shared: bool,
    effects: Mapping[BlockId, BlockEffects],
) -> SiteLegality:
    """Combine the cached analyses into one site verdict."""
    shape = region.shape if region is not None else SHAPE_COMPLEX
    fall_edge = proc.fallthrough_edge(site)
    target = fall_edge.dst if fall_edge is not None else None

    def blocked(reason: str) -> SiteLegality:
        return SiteLegality(
            procedure=proc.name,
            site=site,
            verdict=BLOCKED,
            shape=shape,
            reason=reason,
            target=target,
            taken_chain=taken,
            fall_chain=fall,
        )

    if (
        taken.kind == CHAIN_DIVERGENT
        or fall.kind == CHAIN_DIVERGENT
        or site in taken.path
        or site in fall.path
        or taken.end == site
        or fall.end == site
    ):
        return blocked(REASON_LOOP_REGION)
    if _arms_indirect(effects, taken, fall):
        return blocked(REASON_INDIRECT_CALL)
    if not _chains_equal(taken, fall):
        return blocked(REASON_CHAINS_DIVERGE)
    # Equal observables; the ends must also be dynamically interchangeable:
    # the same surviving site, or two returns (whose equal bodies are
    # already part of the compared observables).  Distinct-but-similar end
    # sites would carry *differently seeded* decision streams.
    if taken.end != fall.end and taken.kind != CHAIN_RETURN:
        return blocked(REASON_JOIN_MISMATCH)
    if shared:
        return blocked(REASON_SHARED_BEHAVIOR)
    verdict = IF_CONVERTIBLE if shape == SHAPE_TRIANGLE else MELDABLE
    return SiteLegality(
        procedure=proc.name,
        site=site,
        verdict=verdict,
        shape=shape,
        reason=None,
        target=target,
        taken_chain=taken,
        fall_chain=fall,
    )


def analyze_procedure(
    proc: Procedure,
    manager: Optional[AnalysisManager] = None,
    owners: Optional[Mapping[int, List[Tuple[str, BlockId]]]] = None,
) -> List[SiteLegality]:
    """Classify every conditional site of one procedure.

    ``owners`` carries the program-wide behaviour-sharing map; when
    absent, sharing is judged within the procedure alone.
    """
    if manager is None:
        manager = AnalysisManager(proc)
    chains = manager.site_chains()
    shapes = manager.region_shapes()
    effects = manager.block_effects()
    if owners is None:
        owners = behavior_owners([proc])
    verdicts: List[SiteLegality] = []
    for site in sorted(chains):
        taken, fall = chains[site]
        root = behavior_root(proc.blocks[site].behavior)
        shared = root is not None and len(owners.get(id(root), [])) > 1
        verdicts.append(
            classify_site(
                proc, site, taken, fall, shapes.get(site), shared, effects
            )
        )
    return verdicts


def analyze_program(
    program: Program, analyses: Optional[ProgramAnalyses] = None
) -> LegalityReport:
    """Classify every conditional site of a whole program."""
    if analyses is None:
        analyses = ProgramAnalyses()
    owners = behavior_owners(program.procedures.values())
    report = LegalityReport()
    for name in program.order:
        proc = program.procedures[name]
        manager = analyses.for_procedure(proc)
        report.sites.extend(analyze_procedure(proc, manager, owners))
    return report
