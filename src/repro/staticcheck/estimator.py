"""Static branch-cost estimation from the edge profile alone.

Everything the trace-driven simulator measures is, for this executor, a
deterministic function of the CFG, the layout and the edge profile:
behaviours replay the same block sequence at the same seed, so profiled
edge counts *are* execution counts.  This module exploits that to bound
per-architecture misfetch/mispredict totals — and hence relative CPI —
without replaying a single event.

Exact quantities (derivable from flow counts and the layout):

* executed instructions: each block execution charges its *placed* size
  (the executor charges an appended jump on both paths of a conditional);
* every event count (conditional, unconditional, indirect, call, return);
* static-architecture conditional penalties: FALLTHROUGH, BT/FNT and
  LIKELY predict a fixed per-site direction, so their penalty is a
  per-site weight split.

Modelled quantities (documented approximations):

* PHT conditionals use the stationary 2-bit-counter model
  (:func:`repro.profiling.condmix.stationary_two_bit_rates`) per site —
  exact for independent outcomes, slightly pessimistic for loop exits,
  optimistic for alternating patterns the gshare history can learn;
  table aliasing is ignored, so both PHTs share one estimate.
* BTB direction counters use the same stationary model with BTB penalty
  rules (a correct prediction costs nothing); capacity misses and cold
  misses are ignored, and indirect-jump staleness is modelled as the
  collision probability ``1 - sum(q_i^2)`` of the profiled target
  distribution.  Indirect calls are upper-bounded at one mispredict per
  execution (their callee distribution is not edge-profiled).
* returns through the 32-entry RAS are assumed perfectly predicted,
  except the program's final return which pops an empty stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cfg import Procedure, TerminatorKind
from ..isa.encoder import LinkedProgram
from ..profiling.condmix import stationary_two_bit_rates
from ..profiling.edge_profile import EdgeProfile
from ..sim.metrics import ALL_ARCHS, SimulationReport
from ..sim.predictors.base import MISFETCH_CYCLES, MISPREDICT_CYCLES


@dataclass(frozen=True)
class BranchSiteEstimate:
    """Static view of one conditional branch site under one layout."""

    procedure: str
    block: int
    address: int
    #: Executions taking the *placed* branch (toward ``taken_target``).
    w_taken: int
    #: Executions falling through (toward the other successor).
    w_fall: int
    #: Whether the placed taken target lies at a lower address (BT/FNT).
    taken_backward: bool

    @property
    def weight(self) -> int:
        return self.w_taken + self.w_fall

    @property
    def p_taken(self) -> float:
        """Probability the branch is taken as placed (0 if never run)."""
        return self.w_taken / self.weight if self.weight else 0.0


@dataclass
class ArchEstimate:
    """Estimated penalty totals for one branch architecture."""

    name: str
    misfetches: float = 0.0
    mispredicts: float = 0.0

    @property
    def bep(self) -> float:
        return (
            self.misfetches * MISFETCH_CYCLES
            + self.mispredicts * MISPREDICT_CYCLES
        )


@dataclass
class CostEstimate:
    """Full static cost estimate of one linked binary under a profile."""

    instructions: int
    sites: List[BranchSiteEstimate] = field(default_factory=list)
    arch: Dict[str, ArchEstimate] = field(default_factory=dict)

    def relative_cpi(self, arch_name: str, original_instructions: int) -> float:
        """(estimated instructions + estimated BEP) / original instructions."""
        if original_instructions <= 0:
            raise ValueError("original instruction count must be positive")
        return (self.instructions + self.arch[arch_name].bep) / original_instructions


def _cond_layout_mix(
    proc: Procedure, profile: EdgeProfile, bid: int, taken_target: int
) -> Tuple[int, int]:
    """(taken, fall) weights of a conditional *as placed*.

    An inverted conditional swaps the original roles: the placed taken
    weight is whatever flows toward ``placement.taken_target``.
    """
    taken_edge = proc.taken_edge(bid)
    fall_edge = proc.fallthrough_edge(bid)
    assert taken_edge is not None and fall_edge is not None
    other = fall_edge.dst if taken_target == taken_edge.dst else taken_edge.dst
    return (
        profile.weight(proc.name, bid, taken_target),
        profile.weight(proc.name, bid, other),
    )


def estimate_costs(linked: LinkedProgram, profile: EdgeProfile) -> CostEstimate:
    """Estimate instruction and penalty totals for every architecture."""
    program = linked.program

    instructions = 0
    uncond_events = 0          # executed unconditional branches (kept + appended)
    call_events = 0            # direct calls
    icall_events = 0           # indirect calls
    indirect_mispredict_btb = 0.0
    indirect_events = 0
    sites: List[BranchSiteEstimate] = []

    for proc in program:
        layout = linked.layout[proc.name]
        for placement in layout.placements:
            block = proc.block(placement.bid)
            executions = profile.block_weight(proc, placement.bid)
            instructions += executions * layout.placed_size(placement.bid)
            if block.calls and executions:
                direct = sum(1 for c in block.calls if not c.is_indirect)
                call_events += executions * direct
                icall_events += executions * (len(block.calls) - direct)

            kind = block.kind
            if kind is TerminatorKind.COND:
                assert placement.taken_target is not None
                w_taken, w_fall = _cond_layout_mix(
                    proc, profile, placement.bid, placement.taken_target
                )
                lb = linked.block(proc.name, placement.bid)
                assert lb.term_address is not None
                target_addr = linked.block_address(
                    proc.name, placement.taken_target
                )
                sites.append(BranchSiteEstimate(
                    procedure=proc.name,
                    block=placement.bid,
                    address=lb.term_address,
                    w_taken=w_taken,
                    w_fall=w_fall,
                    taken_backward=target_addr < lb.term_address,
                ))
                if placement.jump_target is not None:
                    # The appended jump executes on the not-taken path.
                    uncond_events += w_fall
            elif kind is TerminatorKind.UNCOND:
                if not placement.branch_removed:
                    uncond_events += executions
            elif kind is TerminatorKind.FALLTHROUGH:
                if placement.jump_target is not None:
                    uncond_events += executions
            elif kind is TerminatorKind.INDIRECT:
                weights = [
                    profile.weight(proc.name, placement.bid, e.dst)
                    for e in proc.out_edges(placement.bid)
                ]
                total = sum(weights)
                indirect_events += total
                if total:
                    # Independent draws from the profiled target mix: the
                    # BTB entry is stale whenever the target changes.
                    collision = sum((w / total) ** 2 for w in weights)
                    indirect_mispredict_btb += total * (1.0 - collision)

    # Returns: one per call, plus the program's final return, which pops
    # an empty return stack and therefore always mispredicts.
    ret_mispredicts = 1.0

    estimate = CostEstimate(instructions=instructions, sites=sites)

    # Penalties shared by the static and PHT architectures: every
    # unconditional/call misfetches, every indirect/icall mispredicts.
    static_misfetch = float(uncond_events + call_events)
    static_indirect = float(indirect_events + icall_events)

    def static_arch(name: str, predict_taken) -> ArchEstimate:
        est = ArchEstimate(name)
        est.misfetches = static_misfetch
        est.mispredicts = static_indirect + ret_mispredicts
        for site in sites:
            if predict_taken(site):
                est.misfetches += site.w_taken      # correct taken: misfetch
                est.mispredicts += site.w_fall
            else:
                est.mispredicts += site.w_taken
        return est

    estimate.arch["fallthrough"] = static_arch("fallthrough", lambda s: False)
    estimate.arch["btfnt"] = static_arch("btfnt", lambda s: s.taken_backward)
    estimate.arch["likely"] = static_arch("likely", lambda s: s.w_taken > s.w_fall)

    pht = ArchEstimate("pht")
    pht.misfetches = static_misfetch
    pht.mispredicts = static_indirect + ret_mispredicts
    btb = ArchEstimate("btb")
    btb.mispredicts = indirect_mispredict_btb + float(icall_events) + ret_mispredicts
    for site in sites:
        if not site.weight:
            continue
        p_predict_taken, mispredict_rate = stationary_two_bit_rates(site.p_taken)
        pht.mispredicts += site.weight * mispredict_rate
        pht.misfetches += site.w_taken * p_predict_taken  # correct & taken
        btb.mispredicts += site.weight * mispredict_rate
    for name in ("pht-direct", "pht-correlation"):
        estimate.arch[name] = ArchEstimate(name, pht.misfetches, pht.mispredicts)
    for name in ("btb-64x2", "btb-256x4"):
        estimate.arch[name] = ArchEstimate(name, btb.misfetches, btb.mispredicts)
    return estimate


@dataclass(frozen=True)
class ArchAgreement:
    """Estimator-vs-simulator agreement for one architecture."""

    name: str
    estimated_cpi: float
    simulated_cpi: float

    @property
    def relative_error(self) -> float:
        """|estimate - simulation| as a fraction of the simulated CPI."""
        if self.simulated_cpi == 0:
            return 0.0 if self.estimated_cpi == 0 else float("inf")
        return abs(self.estimated_cpi - self.simulated_cpi) / self.simulated_cpi


def cross_validate(
    estimate: CostEstimate,
    report: SimulationReport,
    original_instructions: Optional[int] = None,
    archs: Tuple[str, ...] = ALL_ARCHS,
) -> List[ArchAgreement]:
    """Compare estimated vs simulated relative CPI per architecture.

    With ``original_instructions`` omitted, both sides normalise by the
    simulated instruction count of the run itself (pure-BEP comparison of
    one layout); pass the original binary's count to compare the paper's
    relative-CPI numbers.

    The comparison is sharpest when ``report`` comes from the replay
    engine driven by the same decision trace that produced the estimator's
    profile (``simulate(..., trace=trace, engine="replay")`` with
    ``profile = trace.edge_profile(program)``): both sides then describe
    the identical dynamic run and any residual error is attributable to
    the estimator's aggregation, not to behavioural divergence between
    two executions.
    """
    base = original_instructions or report.instructions
    return [
        ArchAgreement(
            name=name,
            estimated_cpi=estimate.relative_cpi(name, base),
            simulated_cpi=report.relative_cpi(name, base),
        )
        for name in archs
    ]
