"""Static analysis over CFGs, profiles and layouts (``repro lint``).

Three parts:

* :mod:`.passes` — verifier passes with stable ``RLxxx`` diagnostics,
  run by a crash-isolating :class:`~repro.staticcheck.passes.PassManager`;
* :mod:`.dataflow` — cached classic analyses (reachability, dominators,
  postdominators, natural loops) behind an ``AnalysisManager``;
* :mod:`.estimator` — a trace-free branch-cost estimator computed from
  the edge profile, cross-validated against the simulator.
"""

from .dataflow import AnalysisManager, ProgramAnalyses
from .diagnostics import (
    CODES,
    REPORT_SCHEMA_VERSION,
    Diagnostic,
    LintReport,
    PassOutcome,
    Severity,
    worst_severity,
)
from .estimator import (
    ArchAgreement,
    ArchEstimate,
    BranchSiteEstimate,
    CostEstimate,
    cross_validate,
    estimate_costs,
)
from .passes import PASSES, LintContext, PassManager, VerifierPass, run_lint

__all__ = [
    "AnalysisManager",
    "ArchAgreement",
    "ArchEstimate",
    "BranchSiteEstimate",
    "CODES",
    "CostEstimate",
    "Diagnostic",
    "LintContext",
    "LintReport",
    "PASSES",
    "PassManager",
    "PassOutcome",
    "ProgramAnalyses",
    "REPORT_SCHEMA_VERSION",
    "Severity",
    "VerifierPass",
    "cross_validate",
    "estimate_costs",
    "run_lint",
    "worst_severity",
]
