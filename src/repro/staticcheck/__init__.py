"""Static analysis over CFGs, profiles and layouts (``repro lint``).

Three parts:

* :mod:`.passes` — verifier passes with stable ``RLxxx`` diagnostics,
  run by a crash-isolating :class:`~repro.staticcheck.passes.PassManager`;
* :mod:`.dataflow` — cached classic analyses (reachability, dominators,
  postdominators, natural loops) behind an ``AnalysisManager``;
* :mod:`.estimator` — a trace-free branch-cost estimator computed from
  the edge profile, cross-validated against the simulator;
* :mod:`.predict` / :mod:`.propagate` — profile-free branch prediction:
  structural heuristics vote on every conditional site and Wu–Larus
  frequency propagation turns the probabilities into synthetic edge
  counts (surfaced as :class:`repro.profiling.StaticProfile`);
* :mod:`.binary` — binary-level translation validation: CFG recovery
  from the linked instruction stream, encoding checks (RL013-RL017) and
  static bisimulation proofs for every alignment rewrite.
"""

from .binary import (
    BinaryImage,
    EquivalenceError,
    EquivalenceProof,
    ProcedureProof,
    RecoveredBlock,
    RecoveredCFG,
    RecoveredProcedure,
    RecoveryError,
    check_proof,
    proof_key,
    prove_cfgs,
    prove_layouts,
    prove_meld,
    prove_meld_layouts,
    recover,
    recover_layout,
    verify_image,
)
from .dataflow import AnalysisManager, ProgramAnalyses, cfg_fingerprint
from .diagnostics import (
    CODES,
    REPORT_SCHEMA_VERSION,
    Diagnostic,
    LintReport,
    PassOutcome,
    Severity,
    worst_severity,
)
from .estimator import (
    ArchAgreement,
    ArchEstimate,
    BranchSiteEstimate,
    CostEstimate,
    cross_validate,
    estimate_costs,
)
from .legality import (
    LegalityReport,
    SiteLegality,
    analyze_procedure,
    analyze_program,
)
from .passes import (
    PASSES,
    LintContext,
    MeldContext,
    PassManager,
    StaticContext,
    VerifierPass,
    pass_count,
    pass_ids,
    run_lint,
)
from .predict import (
    DEFAULT_CONFIG,
    HEURISTICS,
    HeuristicConfig,
    HeuristicVote,
    PredictionReport,
    SitePrediction,
    combine_votes,
    predict_procedure,
    predict_program,
)
from .propagate import (
    CP_MAX,
    FrequencyMap,
    edge_probabilities,
    propagate_procedure,
    propagate_program,
)

__all__ = [
    "AnalysisManager",
    "ArchAgreement",
    "ArchEstimate",
    "BinaryImage",
    "BranchSiteEstimate",
    "CODES",
    "CP_MAX",
    "CostEstimate",
    "DEFAULT_CONFIG",
    "Diagnostic",
    "EquivalenceError",
    "EquivalenceProof",
    "FrequencyMap",
    "HEURISTICS",
    "HeuristicConfig",
    "HeuristicVote",
    "LegalityReport",
    "LintContext",
    "LintReport",
    "MeldContext",
    "PASSES",
    "PassManager",
    "PassOutcome",
    "PredictionReport",
    "ProcedureProof",
    "ProgramAnalyses",
    "RecoveredBlock",
    "RecoveredCFG",
    "RecoveredProcedure",
    "RecoveryError",
    "REPORT_SCHEMA_VERSION",
    "Severity",
    "SiteLegality",
    "SitePrediction",
    "StaticContext",
    "VerifierPass",
    "analyze_procedure",
    "analyze_program",
    "cfg_fingerprint",
    "check_proof",
    "combine_votes",
    "cross_validate",
    "edge_probabilities",
    "estimate_costs",
    "pass_count",
    "pass_ids",
    "predict_procedure",
    "predict_program",
    "proof_key",
    "propagate_procedure",
    "propagate_program",
    "prove_cfgs",
    "prove_layouts",
    "prove_meld",
    "prove_meld_layouts",
    "recover",
    "recover_layout",
    "run_lint",
    "verify_image",
    "worst_severity",
]
