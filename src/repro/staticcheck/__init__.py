"""Static analysis over CFGs, profiles and layouts (``repro lint``).

Three parts:

* :mod:`.passes` — verifier passes with stable ``RLxxx`` diagnostics,
  run by a crash-isolating :class:`~repro.staticcheck.passes.PassManager`;
* :mod:`.dataflow` — cached classic analyses (reachability, dominators,
  postdominators, natural loops) behind an ``AnalysisManager``;
* :mod:`.estimator` — a trace-free branch-cost estimator computed from
  the edge profile, cross-validated against the simulator;
* :mod:`.binary` — binary-level translation validation: CFG recovery
  from the linked instruction stream, encoding checks (RL013-RL017) and
  static bisimulation proofs for every alignment rewrite.
"""

from .binary import (
    BinaryImage,
    EquivalenceError,
    EquivalenceProof,
    ProcedureProof,
    RecoveredBlock,
    RecoveredCFG,
    RecoveredProcedure,
    RecoveryError,
    check_proof,
    proof_key,
    prove_cfgs,
    prove_layouts,
    recover,
    recover_layout,
    verify_image,
)
from .dataflow import AnalysisManager, ProgramAnalyses
from .diagnostics import (
    CODES,
    REPORT_SCHEMA_VERSION,
    Diagnostic,
    LintReport,
    PassOutcome,
    Severity,
    worst_severity,
)
from .estimator import (
    ArchAgreement,
    ArchEstimate,
    BranchSiteEstimate,
    CostEstimate,
    cross_validate,
    estimate_costs,
)
from .passes import PASSES, LintContext, PassManager, VerifierPass, run_lint

__all__ = [
    "AnalysisManager",
    "ArchAgreement",
    "ArchEstimate",
    "BinaryImage",
    "BranchSiteEstimate",
    "CODES",
    "CostEstimate",
    "Diagnostic",
    "EquivalenceError",
    "EquivalenceProof",
    "LintContext",
    "LintReport",
    "PASSES",
    "PassManager",
    "PassOutcome",
    "ProcedureProof",
    "ProgramAnalyses",
    "RecoveredBlock",
    "RecoveredCFG",
    "RecoveredProcedure",
    "RecoveryError",
    "REPORT_SCHEMA_VERSION",
    "Severity",
    "VerifierPass",
    "check_proof",
    "cross_validate",
    "estimate_costs",
    "proof_key",
    "prove_cfgs",
    "prove_layouts",
    "recover",
    "recover_layout",
    "run_lint",
    "verify_image",
    "worst_severity",
]
