"""Disassembler and CFG recovery from a linked binary image.

The recovery engine deliberately works from the *least* information a
binary rewriter's validator could rely on: the flat, address-sorted
instruction stream of a :class:`~repro.isa.encoder.LinkedProgram` plus its
symbol table (procedure name, entry address).  No block ids, no layout
placements, no source :class:`~repro.cfg.Program` — leaders are rediscovered
from branch targets and fall-through the way a real disassembler does it,
so the recovered graph is an independent witness of what the rewrite
actually emitted.

Because recovery only splits blocks at *observed* control flow, two source
blocks glued together by layout (a fall-through block followed by its only
successor) come back as a single recovered block.  The equivalence prover
(:mod:`repro.staticcheck.binary.equiv`) is therefore written against
instruction-level observables, not block identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...isa.encoder import LinkedProgram
from ...isa.instructions import INSTRUCTION_BYTES, Instruction, Opcode
from ...isa.layout import ProgramLayout

#: Opcodes that terminate a basic block (calls do not: control returns).
_TERMINATORS = (
    Opcode.COND_BRANCH,
    Opcode.UNCOND_BRANCH,
    Opcode.INDIRECT_JUMP,
    Opcode.RETURN,
)

#: Opcodes carrying a direct (statically known) target address.
_DIRECT = (Opcode.COND_BRANCH, Opcode.UNCOND_BRANCH, Opcode.CALL)


class RecoveryError(ValueError):
    """The instruction stream does not decode to a consistent CFG."""


@dataclass(frozen=True)
class BinaryImage:
    """Pure-data view of a linked program: bytes-with-addresses + symbols.

    This is the *only* input the recovery path sees.  ``symbols`` maps each
    procedure name to its entry address in link order; ``entry_symbol``
    names the image's entry point (what an ELF header would record).
    """

    instructions: Tuple[Instruction, ...]
    symbols: Tuple[Tuple[str, int], ...]
    entry_symbol: str
    text_base: int
    text_end: int

    @classmethod
    def from_linked(cls, linked: LinkedProgram) -> "BinaryImage":
        """Flatten a linked program into an image, discarding metadata."""
        instructions = tuple(
            sorted(linked.disassemble(), key=lambda ins: ins.address)
        )
        symbols = tuple(
            (name, linked.proc_start[name]) for name in linked.program.order
        )
        base = min(addr for _, addr in symbols) if symbols else linked.text_end
        return cls(
            instructions=instructions,
            symbols=symbols,
            entry_symbol=linked.program.entry,
            text_base=base,
            text_end=linked.text_end,
        )

    def symbol_at(self, address: int) -> Optional[str]:
        """Name of the procedure whose entry is ``address``, if any."""
        for name, addr in self.symbols:
            if addr == address:
                return name
        return None


@dataclass(frozen=True)
class RecoveredBlock:
    """A basic block rediscovered from the instruction stream.

    ``kind`` is the terminator opcode of the block's last instruction, or
    ``None`` for a pure fall-through block.  ``taken_target`` and
    ``fall_target`` are *addresses*; ``fall_target`` is ``None`` when the
    block cannot fall through (unconditional transfer or return).
    """

    start: int
    instructions: Tuple[Instruction, ...]
    kind: Optional[Opcode]
    taken_target: Optional[int]
    fall_target: Optional[int]

    @property
    def end(self) -> int:
        """Address one past the last instruction."""
        return self.start + len(self.instructions) * INSTRUCTION_BYTES

    @property
    def size(self) -> int:
        return len(self.instructions)

    def successors(self) -> Tuple[int, ...]:
        """Statically known successor addresses."""
        out: List[int] = []
        if self.taken_target is not None:
            out.append(self.taken_target)
        if self.fall_target is not None:
            out.append(self.fall_target)
        return tuple(out)


@dataclass(frozen=True)
class RecoveredProcedure:
    """All recovered blocks within one symbol's address span."""

    name: str
    start: int
    end: int
    blocks: Tuple[RecoveredBlock, ...]

    @property
    def entry(self) -> int:
        return self.start

    def block_at(self, address: int) -> RecoveredBlock:
        """The block whose first instruction is ``address``."""
        for block in self.blocks:
            if block.start == address:
                return block
        raise KeyError(f"{self.name}: no recovered block at {address:#x}")

    def has_block_at(self, address: int) -> bool:
        return any(block.start == address for block in self.blocks)


@dataclass(frozen=True)
class RecoveredCFG:
    """The control-flow graph recovered from a whole binary image."""

    image: BinaryImage
    procedures: Tuple[RecoveredProcedure, ...]

    @property
    def entry_symbol(self) -> str:
        return self.image.entry_symbol

    def procedure(self, name: str) -> RecoveredProcedure:
        for proc in self.procedures:
            if proc.name == name:
                return proc
        raise KeyError(f"no recovered procedure named {name!r}")

    def procedure_names(self) -> Tuple[str, ...]:
        return tuple(proc.name for proc in self.procedures)

    def callee_name(self, address: int) -> Optional[str]:
        """Resolve a call target address to its symbol, if it is one."""
        return self.image.symbol_at(address)


def _spans(image: BinaryImage) -> List[Tuple[str, int, int]]:
    """(name, start, end) address spans of each symbol, in address order."""
    ordered = sorted(image.symbols, key=lambda pair: pair[1])
    spans: List[Tuple[str, int, int]] = []
    for idx, (name, start) in enumerate(ordered):
        end = ordered[idx + 1][1] if idx + 1 < len(ordered) else image.text_end
        spans.append((name, start, end))
    return spans


def _decode_stream(image: BinaryImage) -> Dict[int, Instruction]:
    """Index the stream by address, rejecting inconsistent encodings."""
    by_address: Dict[int, Instruction] = {}
    for instruction in image.instructions:
        if instruction.address in by_address:
            raise RecoveryError(
                f"overlapping code: two instructions at {instruction.address:#x}"
            )
        if not image.text_base <= instruction.address < image.text_end:
            raise RecoveryError(
                f"instruction at {instruction.address:#x} lies outside the "
                f"text segment [{image.text_base:#x}, {image.text_end:#x})"
            )
        by_address[instruction.address] = instruction
    return by_address


def _find_leaders(
    stream: Dict[int, Instruction], start: int, end: int
) -> List[int]:
    """Block leaders within one procedure span, address-sorted.

    A leader is the procedure entry, any direct branch target landing
    inside the span, or the instruction following a block terminator.
    Calls do not end blocks — control returns to the next instruction.
    """
    leaders = {start}
    address = start
    while address < end:
        instruction = stream.get(address)
        if instruction is None:
            raise RecoveryError(
                f"hole in the instruction stream at {address:#x}"
            )
        if instruction.opcode in (Opcode.COND_BRANCH, Opcode.UNCOND_BRANCH):
            target = instruction.target
            if target is not None and start <= target < end:
                leaders.add(target)
        if instruction.opcode in _TERMINATORS:
            after = address + INSTRUCTION_BYTES
            if after < end:
                leaders.add(after)
        address += INSTRUCTION_BYTES
    return sorted(leaders)


def _carve_blocks(
    stream: Dict[int, Instruction], leaders: List[int], end: int
) -> Tuple[RecoveredBlock, ...]:
    """Slice the span at its leaders and classify each block's terminator."""
    blocks: List[RecoveredBlock] = []
    for idx, leader in enumerate(leaders):
        stop = leaders[idx + 1] if idx + 1 < len(leaders) else end
        body = tuple(
            stream[address]
            for address in range(leader, stop, INSTRUCTION_BYTES)
        )
        last = body[-1]
        kind: Optional[Opcode] = None
        taken: Optional[int] = None
        fall: Optional[int] = stop
        if last.opcode in _TERMINATORS:
            kind = last.opcode
            if last.opcode is Opcode.COND_BRANCH:
                taken = last.target
            elif last.opcode is Opcode.UNCOND_BRANCH:
                taken = last.target
                fall = None
            else:  # INDIRECT_JUMP, RETURN — no static successors
                fall = None
        blocks.append(
            RecoveredBlock(
                start=leader,
                instructions=body,
                kind=kind,
                taken_target=taken,
                fall_target=fall,
            )
        )
    return tuple(blocks)


def recover(image: BinaryImage) -> RecoveredCFG:
    """Rebuild a CFG from an image using addresses and opcodes only.

    Raises :class:`RecoveryError` when the stream cannot be decoded
    consistently (overlapping instructions, holes inside a procedure,
    code outside the text segment, empty procedures).
    """
    stream = _decode_stream(image)
    procedures: List[RecoveredProcedure] = []
    for name, start, end in _spans(image):
        if start >= end:
            raise RecoveryError(f"{name}: empty procedure span at {start:#x}")
        leaders = _find_leaders(stream, start, end)
        blocks = _carve_blocks(stream, leaders, end)
        procedures.append(
            RecoveredProcedure(name=name, start=start, end=end, blocks=blocks)
        )
    by_symbol_order = {name: idx for idx, (name, _) in enumerate(image.symbols)}
    procedures.sort(key=lambda proc: by_symbol_order[proc.name])
    return RecoveredCFG(image=image, procedures=tuple(procedures))


def recover_layout(layout: ProgramLayout) -> RecoveredCFG:
    """Convenience: link a layout, flatten it, and recover its CFG."""
    return recover(BinaryImage.from_linked(LinkedProgram(layout)))
