"""Static equivalence proofs between recovered binary CFGs.

The prover establishes a bisimulation between the CFG recovered from the
*original* linked image and the CFG recovered from an *aligned* image,
modulo exactly the rewrites branch alignment is allowed to make:

* **block permutation** — correspondence is by behaviour, never address;
* **branch-sense inversion** — a conditional site's two out-chains are
  compared as an unordered pair;
* **jump insertion/deletion** — unconditional branches are treated as
  unobservable glue and elided from the observation chains.

The observable alphabet is everything alignment must *preserve*: runs of
straight-line operations (counted, coalesced across recovered-block
boundaries, since recovery may merge blocks a layout made adjacent),
direct calls (by callee symbol), indirect calls, and the three
control-site kinds (conditional branch, indirect jump, return).

The proof itself is a Kanellakis-Smolka partition refinement over the
disjoint union of both sides' control sites, followed by a product-graph
walk that emits a *checkable artifact*: per-procedure block
correspondences (with inversion flags) plus an edge witness list.
:func:`check_proof` re-validates an artifact as a bisimulation against the
two recovered CFGs without re-running refinement — an independent,
much simpler checker in the classic translation-validation style.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from ...isa.encoder import LinkedProgram, link_identity
from ...isa.instructions import Opcode
from ...isa.layout import ProgramLayout
from .recover import (
    BinaryImage,
    RecoveredBlock,
    RecoveredCFG,
    RecoveredProcedure,
    RecoveryError,
    recover,
)

PROOF_SCHEMA_VERSION = 1

#: Chain kinds with no terminal control site.
_TERMINAL_KINDS = ("fall-off-end", "divergent", "external")

_SITE_KINDS: Dict[Opcode, str] = {
    Opcode.COND_BRANCH: "cond",
    Opcode.INDIRECT_JUMP: "indirect",
    Opcode.RETURN: "return",
}


class EquivalenceError(ValueError):
    """A proof artifact does not certify a bisimulation."""


@dataclass(frozen=True)
class _Chain:
    """A maximal observation sequence ending at a control site.

    ``observables`` is the coalesced run of ``ops:N`` / ``call:SYM`` /
    ``icall`` tokens collected while walking from the chain's start
    through fall-throughs and unconditional branches.  ``site`` is the
    start address of the terminating control-site block, or ``None`` for
    the terminal kinds (fall-off-end, divergent, external).
    """

    observables: Tuple[str, ...]
    kind: str
    site: Optional[int]


class _Side:
    """Per-procedure chain cache and control-site index for one image.

    ``elide`` names conditional sites to treat as unobservable glue: the
    walk silently continues along their fall-through successor instead
    of stopping.  Elision is how *melding* proofs absorb a conditional
    the transform removed — sound only for sites whose two arms are
    observationally identical, which :func:`check_proof` re-verifies
    from the claimed set in the artifact (see :func:`_site_is_trivial`).
    """

    def __init__(
        self,
        cfg: RecoveredCFG,
        proc: RecoveredProcedure,
        elide: FrozenSet[int] = frozenset(),
    ):
        self.cfg = cfg
        self.proc = proc
        self.elide = elide
        self.sites: Dict[int, RecoveredBlock] = {
            block.start: block
            for block in proc.blocks
            if block.kind in _SITE_KINDS
        }
        self._chains: Dict[int, _Chain] = {}

    def site_kind(self, address: int) -> str:
        kind = self.sites[address].kind
        assert kind is not None
        return _SITE_KINDS[kind]

    def chain(self, address: int) -> _Chain:
        cached = self._chains.get(address)
        if cached is None:
            cached = self._walk(address)
            self._chains[address] = cached
        return cached

    def _walk(self, start: int) -> _Chain:
        observables: List[str] = []
        ops = 0

        def flush() -> None:
            nonlocal ops
            if ops:
                observables.append(f"ops:{ops}")
                ops = 0

        visited: Set[int] = set()
        address = start
        while True:
            if address == self.proc.end:
                flush()
                return _Chain(tuple(observables), "fall-off-end", None)
            if not self.proc.has_block_at(address):
                flush()
                observables.append(f"external:{address:#x}")
                return _Chain(tuple(observables), "external", None)
            if address in visited:
                flush()
                return _Chain(tuple(observables), "divergent", None)
            visited.add(address)
            block = self.proc.block_at(address)
            body = block.instructions
            if block.kind is not None:
                body = body[:-1]
            for instruction in body:
                if instruction.opcode is Opcode.OP:
                    ops += 1
                elif instruction.opcode is Opcode.CALL:
                    flush()
                    target = instruction.target
                    assert target is not None
                    callee = self.cfg.callee_name(target)
                    label = callee if callee is not None else f"@{target:#x}"
                    observables.append(f"call:{label}")
                elif instruction.opcode is Opcode.INDIRECT_CALL:
                    flush()
                    observables.append("icall")
                else:
                    # A mid-block control transfer would contradict the
                    # leader rules recovery was built on.
                    flush()
                    observables.append(f"stray:{instruction.opcode.value}")
            if block.kind is None:
                assert block.fall_target is not None
                address = block.fall_target
                continue
            if block.kind is Opcode.UNCOND_BRANCH:
                # Unobservable glue: follow silently.
                target = block.taken_target
                assert target is not None
                address = target
                continue
            if (
                block.kind is Opcode.COND_BRANCH
                and block.start in self.elide
                and block.fall_target is not None
            ):
                # Elided trivial conditional: both arms are observably
                # identical, so following the fall-through loses nothing.
                address = block.fall_target
                continue
            flush()
            return _Chain(
                tuple(observables), _SITE_KINDS[block.kind], block.start
            )

    def cond_chains(self, address: int) -> Tuple[_Chain, _Chain]:
        """(taken-chain, fall-chain) of a conditional control site."""
        block = self.sites[address]
        assert block.kind is Opcode.COND_BRANCH
        assert block.taken_target is not None
        taken = self.chain(block.taken_target)
        if block.fall_target is None:
            fall = _Chain((), "fall-off-end", None)
        else:
            fall = self.chain(block.fall_target)
        return taken, fall


def _site_is_trivial(side: _Side, address: int) -> bool:
    """Is this conditional's choice unobservable (under ``side.elide``)?

    True when both successor chains carry identical observables and are
    dynamically interchangeable: they converge on the *same* control
    site, or both terminate in a return (whose equal bodies are already
    part of the compared observables).  Divergent / external / fall-off
    ends never qualify.
    """
    block = side.sites.get(address)
    if block is None or block.kind is not Opcode.COND_BRANCH:
        return False
    taken, fall = side.cond_chains(address)
    if taken.observables != fall.observables or taken.kind != fall.kind:
        return False
    if taken.site is not None and taken.site == fall.site:
        return True
    return taken.kind == "return"


def _trivial_elision(cfg: RecoveredCFG, proc: RecoveredProcedure) -> FrozenSet[int]:
    """A self-supporting set of elidable conditional sites.

    :func:`_site_is_trivial` is *not* monotone in the elision set:
    eliding a non-trivial conditional (a loop header, say) reroutes
    other sites' chains around the loop and back into themselves, so a
    sweep that starts from every conditional can poison — and then
    discard — sites that are genuinely trivial on their own.  Instead,
    grow the set inside-out: repeatedly admit sites whose arms are
    observationally identical under the current set, so innermost melded
    diamonds enter first and enable the diamonds that enclose them.
    Then prune back to a post-fixpoint of :func:`_site_is_trivial`
    (later admissions can perturb earlier ones), which is exactly what
    the coinductive reading of bisimilarity needs — and exactly what
    :func:`check_proof` re-verifies for a claimed set.
    """
    conds = frozenset(
        address
        for address, block in _Side(cfg, proc).sites.items()
        if block.kind is Opcode.COND_BRANCH
    )
    elide: FrozenSet[int] = frozenset()
    while True:
        side = _Side(cfg, proc, elide=elide)
        grown = elide | frozenset(
            a for a in conds - elide if _site_is_trivial(side, a)
        )
        if grown == elide:
            break
        elide = grown
    while True:
        side = _Side(cfg, proc, elide=elide)
        kept = frozenset(a for a in elide if _site_is_trivial(side, a))
        if kept == elide:
            return kept
        elide = kept


_State = Tuple[str, int]
_Descriptor = Tuple[Tuple[str, ...], str, Tuple[str, Any]]


def _descriptor(
    chain: _Chain, side: str, classes: Mapping[_State, int]
) -> _Descriptor:
    if chain.site is None:
        end: Tuple[str, Any] = ("terminal", chain.kind)
    else:
        end = ("class", classes[(side, chain.site)])
    return (chain.observables, chain.kind, end)


def _refine(original: _Side, aligned: _Side) -> Dict[_State, int]:
    """Partition both sides' control sites into bisimulation classes."""
    sides = {"original": original, "aligned": aligned}
    states: List[_State] = [
        (tag, address) for tag, side in sides.items() for address in side.sites
    ]
    classes: Dict[_State, int] = {}
    keys: Dict[Tuple[Any, ...], int] = {}
    for state in states:
        tag, address = state
        key: Tuple[Any, ...] = (sides[tag].site_kind(address),)
        classes[state] = keys.setdefault(key, len(keys))
    while True:
        signatures: Dict[_State, Tuple[Any, ...]] = {}
        for state in states:
            tag, address = state
            side = sides[tag]
            if side.site_kind(address) == "cond":
                taken, fall = side.cond_chains(address)
                pair = tuple(
                    sorted(
                        (
                            _descriptor(taken, tag, classes),
                            _descriptor(fall, tag, classes),
                        )
                    )
                )
            else:
                pair = ()
            signatures[state] = (classes[state], pair)
        keys = {}
        fresh: Dict[_State, int] = {}
        for state in states:
            fresh[state] = keys.setdefault(signatures[state], len(keys))
        if len(set(fresh.values())) == len(set(classes.values())):
            return fresh
        classes = fresh


def _chains_match(
    a: _Chain,
    b: _Chain,
    classes: Mapping[_State, int],
) -> bool:
    """Do two chains (original side vs aligned side) carry equal behaviour?"""
    if a.observables != b.observables or a.kind != b.kind:
        return False
    if (a.site is None) != (b.site is None):
        return False
    if a.site is None:
        return True
    assert b.site is not None
    return classes[("original", a.site)] == classes[("aligned", b.site)]


@dataclass(frozen=True)
class ProcedureProof:
    """The checkable per-procedure half of an equivalence proof."""

    name: str
    bisimilar: bool
    reason: str
    entry: Dict[str, Any]
    correspondences: Tuple[Dict[str, Any], ...]
    witnesses: Tuple[Dict[str, Any], ...]
    #: Conditional sites proved trivial and treated as glue (melding).
    elided_original: Tuple[int, ...] = ()
    elided_aligned: Tuple[int, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "procedure": self.name,
            "bisimilar": self.bisimilar,
            "reason": self.reason,
            "entry": dict(self.entry),
            "correspondences": [dict(c) for c in self.correspondences],
            "witnesses": [dict(w) for w in self.witnesses],
            "elided_original": list(self.elided_original),
            "elided_aligned": list(self.elided_aligned),
        }


@dataclass(frozen=True)
class EquivalenceProof:
    """A full proof artifact: one :class:`ProcedureProof` per procedure."""

    label: str
    procedures: Tuple[ProcedureProof, ...]
    reason: str = ""

    @property
    def bisimilar(self) -> bool:
        return not self.reason and all(p.bisimilar for p in self.procedures)

    def failures(self) -> List[str]:
        out = [self.reason] if self.reason else []
        out.extend(
            f"{p.name}: {p.reason or 'not bisimilar'}"
            for p in self.procedures
            if not p.bisimilar
        )
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": PROOF_SCHEMA_VERSION,
            "label": self.label,
            "bisimilar": self.bisimilar,
            "reason": self.reason,
            "procedures": [p.to_dict() for p in self.procedures],
        }


def _entry_payload(
    entry_original: _Chain, entry_aligned: _Chain
) -> Dict[str, Any]:
    return {
        "observables": list(entry_original.observables),
        "kind": entry_original.kind,
        "original_site": entry_original.site,
        "aligned_site": entry_aligned.site,
        "aligned_observables": list(entry_aligned.observables),
        "aligned_kind": entry_aligned.kind,
    }


def _failed_procedure(
    name: str,
    reason: str,
    entry: Optional[Dict[str, Any]] = None,
) -> ProcedureProof:
    return ProcedureProof(
        name=name,
        bisimilar=False,
        reason=reason,
        entry=entry or {},
        correspondences=(),
        witnesses=(),
    )


def _prove_procedure(
    original: _Side, aligned: _Side
) -> ProcedureProof:
    name = original.proc.name
    classes = _refine(original, aligned)
    entry_original = original.chain(original.proc.entry)
    entry_aligned = aligned.chain(aligned.proc.entry)
    entry = _entry_payload(entry_original, entry_aligned)
    if not _chains_match(entry_original, entry_aligned, classes):
        return _failed_procedure(
            name, "entry observation chains are not equivalent", entry
        )

    correspondences: List[Dict[str, Any]] = []
    witnesses: List[Dict[str, Any]] = []
    paired: Set[Tuple[int, int]] = set()
    queue: List[Tuple[int, int]] = []
    if entry_original.site is not None and entry_aligned.site is not None:
        queue.append((entry_original.site, entry_aligned.site))

    def witness(
        pair: Tuple[int, int],
        original_edge: str,
        aligned_edge: str,
        chain_original: _Chain,
        chain_aligned: _Chain,
    ) -> None:
        witnesses.append(
            {
                "original_site": pair[0],
                "aligned_site": pair[1],
                "original_edge": original_edge,
                "aligned_edge": aligned_edge,
                "observables": list(chain_original.observables),
                "kind": chain_original.kind,
                "original_next": chain_original.site,
                "aligned_next": chain_aligned.site,
            }
        )

    while queue:
        pair = queue.pop(0)
        if pair in paired:
            continue
        paired.add(pair)
        site_original, site_aligned = pair
        kind = original.site_kind(site_original)
        if kind != aligned.site_kind(site_aligned):
            return _failed_procedure(
                name,
                f"site kind mismatch at {site_original:#x}/{site_aligned:#x}",
                entry,
            )
        inverted = False
        if kind == "cond":
            taken_o, fall_o = original.cond_chains(site_original)
            taken_a, fall_a = aligned.cond_chains(site_aligned)
            straight = _chains_match(taken_o, taken_a, classes) and _chains_match(
                fall_o, fall_a, classes
            )
            swapped = _chains_match(taken_o, fall_a, classes) and _chains_match(
                fall_o, taken_a, classes
            )
            if not straight and not swapped:
                return _failed_procedure(
                    name,
                    f"successor chains of {site_original:#x} and "
                    f"{site_aligned:#x} cannot be matched",
                    entry,
                )
            inverted = not straight
            if inverted:
                matches = ((taken_o, fall_a, "taken", "fall"),
                           (fall_o, taken_a, "fall", "taken"))
            else:
                matches = ((taken_o, taken_a, "taken", "taken"),
                           (fall_o, fall_a, "fall", "fall"))
            for chain_o, chain_a, edge_o, edge_a in matches:
                witness(pair, edge_o, edge_a, chain_o, chain_a)
                if chain_o.site is not None and chain_a.site is not None:
                    queue.append((chain_o.site, chain_a.site))
        correspondences.append(
            {
                "original": site_original,
                "aligned": site_aligned,
                "kind": kind,
                "inverted": inverted,
            }
        )
    return ProcedureProof(
        name=name,
        bisimilar=True,
        reason="",
        entry=entry,
        correspondences=tuple(correspondences),
        witnesses=tuple(witnesses),
        elided_original=tuple(sorted(original.elide)),
        elided_aligned=tuple(sorted(aligned.elide)),
    )


def prove_cfgs(
    original: RecoveredCFG,
    aligned: RecoveredCFG,
    label: str = "aligned",
    *,
    elide_trivial: bool = False,
) -> EquivalenceProof:
    """Prove the aligned recovered CFG bisimilar to the original one.

    With ``elide_trivial`` (the melding mode) conditional sites whose
    two arms are observationally identical are treated as glue on *both*
    sides, so a program that removed such a branch can still be paired
    with its original.  Alignment-only proofs keep the flag off: there,
    every conditional of the original must survive, and claim 15 relies
    on the prover rejecting any layout that drops one.
    """
    names_original = original.procedure_names()
    names_aligned = aligned.procedure_names()
    if names_original != names_aligned:
        return EquivalenceProof(
            label=label,
            procedures=(),
            reason=(
                f"procedure tables differ: {list(names_original)} vs "
                f"{list(names_aligned)}"
            ),
        )
    proofs: List[ProcedureProof] = []
    for name in names_original:
        proc_original = original.procedure(name)
        proc_aligned = aligned.procedure(name)
        elide_original: FrozenSet[int] = frozenset()
        elide_aligned: FrozenSet[int] = frozenset()
        if elide_trivial:
            elide_original = _trivial_elision(original, proc_original)
            elide_aligned = _trivial_elision(aligned, proc_aligned)
        side_original = _Side(original, proc_original, elide=elide_original)
        side_aligned = _Side(aligned, proc_aligned, elide=elide_aligned)
        proofs.append(_prove_procedure(side_original, side_aligned))
    return EquivalenceProof(label=label, procedures=tuple(proofs))


# ----------------------------------------------------------------------
# Independent proof checking
# ----------------------------------------------------------------------
def _check_procedure(
    payload: Mapping[str, Any],
    original: _Side,
    aligned: _Side,
) -> None:
    name = original.proc.name
    pairs: Dict[Tuple[int, int], bool] = {}
    for row in payload.get("correspondences", ()):
        pairs[(int(row["original"]), int(row["aligned"]))] = bool(
            row.get("inverted", False)
        )

    def ends_ok(chain_o: _Chain, chain_a: _Chain) -> bool:
        if chain_o.observables != chain_a.observables:
            return False
        if chain_o.kind != chain_a.kind:
            return False
        if (chain_o.site is None) != (chain_a.site is None):
            return False
        if chain_o.site is None:
            return True
        assert chain_a.site is not None
        return (chain_o.site, chain_a.site) in pairs

    entry_original = original.chain(original.proc.entry)
    entry_aligned = aligned.chain(aligned.proc.entry)
    if not ends_ok(entry_original, entry_aligned):
        raise EquivalenceError(f"{name}: entry chains do not correspond")
    for (site_original, site_aligned), inverted in pairs.items():
        if site_original not in original.sites:
            raise EquivalenceError(
                f"{name}: {site_original:#x} is not an original control site"
            )
        if site_aligned not in aligned.sites:
            raise EquivalenceError(
                f"{name}: {site_aligned:#x} is not an aligned control site"
            )
        kind = original.site_kind(site_original)
        if kind != aligned.site_kind(site_aligned):
            raise EquivalenceError(
                f"{name}: paired sites {site_original:#x}/{site_aligned:#x} "
                "have different kinds"
            )
        if kind != "cond":
            continue
        taken_o, fall_o = original.cond_chains(site_original)
        taken_a, fall_a = aligned.cond_chains(site_aligned)
        if inverted:
            checks = ((taken_o, fall_a), (fall_o, taken_a))
        else:
            checks = ((taken_o, taken_a), (fall_o, fall_a))
        for chain_o, chain_a in checks:
            if not ends_ok(chain_o, chain_a):
                raise EquivalenceError(
                    f"{name}: edge witness fails at pair "
                    f"{site_original:#x}/{site_aligned:#x}"
                )


def check_proof(
    payload: Mapping[str, Any],
    original: RecoveredCFG,
    aligned: RecoveredCFG,
) -> None:
    """Re-validate a proof artifact as a bisimulation, or raise.

    This is the independent checker: it trusts nothing but the block
    correspondences in ``payload`` and re-derives every observation chain
    from the two recovered CFGs.  A payload whose ``bisimilar`` flag is
    ``False`` is accepted as-is (a rejection needs no certificate).
    """
    if payload.get("schema") != PROOF_SCHEMA_VERSION:
        raise EquivalenceError(
            f"unsupported proof schema {payload.get('schema')!r}"
        )
    if not payload.get("bisimilar", False):
        return
    by_name = {
        str(row.get("procedure")): row
        for row in payload.get("procedures", ())
    }
    names = original.procedure_names()
    if names != aligned.procedure_names():
        raise EquivalenceError("procedure tables differ between the images")
    for name in names:
        row = by_name.get(name)
        if row is None:
            raise EquivalenceError(f"proof has no entry for procedure {name!r}")
        if not row.get("bisimilar", False):
            raise EquivalenceError(
                f"{name}: claimed bisimilar overall but procedure row is not"
            )
        elide_original = frozenset(
            int(a) for a in row.get("elided_original", ())
        )
        elide_aligned = frozenset(
            int(a) for a in row.get("elided_aligned", ())
        )
        side_original = _Side(
            original, original.procedure(name), elide=elide_original
        )
        side_aligned = _Side(
            aligned, aligned.procedure(name), elide=elide_aligned
        )
        # An elision claim is part of the certificate: every claimed
        # site must really be a trivial conditional *under the claimed
        # set* (a post-fixpoint check — the coinductive soundness
        # argument for treating the set as glue).
        for side, claimed in (
            (side_original, elide_original),
            (side_aligned, elide_aligned),
        ):
            for address in sorted(claimed):
                if not _site_is_trivial(side, address):
                    raise EquivalenceError(
                        f"{name}: claimed elided site {address:#x} is not "
                        "a trivial conditional"
                    )
        _check_procedure(row, side_original, side_aligned)


# ----------------------------------------------------------------------
# Driver over layouts
# ----------------------------------------------------------------------
def proof_key(benchmark: str, label: str) -> str:
    """Artifact-store key for one (benchmark, layout label) proof."""
    return f"proof/{benchmark}/{label}"


def prove_layouts(
    program: Any,
    layouts: Mapping[str, ProgramLayout],
    store: Any = None,
    benchmark: str = "",
) -> Dict[str, EquivalenceProof]:
    """Prove every aligned layout bisimilar to the identity layout.

    Links each layout, recovers both CFGs from the raw instruction
    streams, runs the prover, and re-validates each positive verdict with
    the independent :func:`check_proof` checker before returning.  When
    ``store`` is given (any object with the artifact-store ``put``
    surface), each proof artifact is persisted under
    ``proof/<benchmark>/<label>``.
    """
    original = recover(BinaryImage.from_linked(link_identity(program)))
    proofs: Dict[str, EquivalenceProof] = {}
    for label, layout in layouts.items():
        try:
            aligned = recover(BinaryImage.from_linked(LinkedProgram(layout)))
        except (RecoveryError, ValueError) as exc:
            proofs[label] = EquivalenceProof(
                label=label, procedures=(), reason=f"recovery failed: {exc}"
            )
            continue
        proof = prove_cfgs(original, aligned, label=label)
        if proof.bisimilar:
            # A proof we cannot independently re-check is no proof at all.
            check_proof(proof.to_dict(), original, aligned)
        proofs[label] = proof
        if store is not None and benchmark:
            store.put(proof_key(benchmark, label), proof.to_dict())
    return proofs


def prove_meld(
    original_program: Any,
    melded_program: Any,
    label: str = "meld",
) -> EquivalenceProof:
    """Prove a melded program bisimilar to its original (elision mode).

    Both programs are linked in identity layout, recovered, and proved
    with ``elide_trivial=True`` so the conditionals melding removed are
    absorbed as trivial glue.  Positive verdicts are re-validated with
    the independent checker before being returned.
    """
    original = recover(BinaryImage.from_linked(link_identity(original_program)))
    try:
        melded = recover(BinaryImage.from_linked(link_identity(melded_program)))
    except (RecoveryError, ValueError) as exc:
        return EquivalenceProof(
            label=label, procedures=(), reason=f"recovery failed: {exc}"
        )
    proof = prove_cfgs(original, melded, label=label, elide_trivial=True)
    if proof.bisimilar:
        check_proof(proof.to_dict(), original, melded)
    return proof


def prove_meld_layouts(
    original_program: Any,
    layouts: Mapping[str, ProgramLayout],
    store: Any = None,
    benchmark: str = "",
) -> Dict[str, EquivalenceProof]:
    """Prove layouts of a *melded* program against the original program.

    Like :func:`prove_layouts`, but the reference image comes from
    ``original_program`` (pre-meld) while each layout belongs to the
    melded program, and the prover runs in elision mode.  This is the
    claim-18 judgement: meld-then-align must still be bisimilar to the
    unmelded original.
    """
    original = recover(BinaryImage.from_linked(link_identity(original_program)))
    proofs: Dict[str, EquivalenceProof] = {}
    for label, layout in layouts.items():
        try:
            aligned = recover(BinaryImage.from_linked(LinkedProgram(layout)))
        except (RecoveryError, ValueError) as exc:
            proofs[label] = EquivalenceProof(
                label=label, procedures=(), reason=f"recovery failed: {exc}"
            )
            continue
        proof = prove_cfgs(original, aligned, label=label, elide_trivial=True)
        if proof.bisimilar:
            check_proof(proof.to_dict(), original, aligned)
        proofs[label] = proof
        if store is not None and benchmark:
            store.put(proof_key(benchmark, label), proof.to_dict())
    return proofs
