"""Encoding verifier over the raw linked instruction stream (RL013-RL017).

Unlike the source-level passes, these checks never consult the layout or
the CFG the image was produced from: they decode the flat stream the same
way :mod:`repro.staticcheck.binary.recover` does and lint what a binary
rewriter actually emitted — displacement encodability, target sanity,
dead padding, control flow running off a procedure's end, and streams
that do not decode to a consistent CFG at all.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ...isa.encoder import LinkedProgram
from ...isa.instructions import INSTRUCTION_BYTES, Instruction, Opcode
from ...isa.layout import ProgramLayout
from ..diagnostics import Diagnostic, Severity
from .recover import BinaryImage, RecoveryError, recover

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..passes import LintContext

#: Signed displacement width of direct control transfers, in words
#: (Alpha-flavoured 21-bit branch displacement field).
BRANCH_DISPLACEMENT_BITS = 21
_DISP_MIN = -(1 << (BRANCH_DISPLACEMENT_BITS - 1))
_DISP_MAX = (1 << (BRANCH_DISPLACEMENT_BITS - 1)) - 1

_DIRECT = (Opcode.COND_BRANCH, Opcode.UNCOND_BRANCH, Opcode.CALL)
_BRANCHES = (Opcode.COND_BRANCH, Opcode.UNCOND_BRANCH)


def displacement(instruction: Instruction) -> Optional[int]:
    """Signed word displacement a direct transfer must encode."""
    if instruction.target is None:
        return None
    return (instruction.target - (instruction.address + INSTRUCTION_BYTES)) // (
        INSTRUCTION_BYTES
    )


def _owner(image: BinaryImage, address: int) -> Optional[str]:
    """Name of the procedure whose span contains ``address``."""
    ordered = sorted(image.symbols, key=lambda pair: pair[1])
    for idx, (name, start) in enumerate(ordered):
        end = ordered[idx + 1][1] if idx + 1 < len(ordered) else image.text_end
        if start <= address < end:
            return name
    return None


def check_encoding(
    image: BinaryImage, pass_id: str = "binary-encoding", layout: Optional[str] = None
) -> List[Diagnostic]:
    """RL013/RL014: displacement range and target sanity, per instruction."""
    out: List[Diagnostic] = []
    decoded = {instruction.address for instruction in image.instructions}
    entries = {addr for _, addr in image.symbols}
    for instruction in image.instructions:
        if instruction.opcode not in _DIRECT:
            continue
        target = instruction.target
        assert target is not None
        proc = _owner(image, instruction.address)
        disp = displacement(instruction)
        assert disp is not None
        if not _DISP_MIN <= disp <= _DISP_MAX:
            out.append(
                Diagnostic(
                    code="RL013",
                    severity=Severity.ERROR,
                    message=(
                        f"{instruction.opcode.value} at {instruction.address:#x} "
                        f"needs displacement {disp}, outside the signed "
                        f"{BRANCH_DISPLACEMENT_BITS}-bit range"
                    ),
                    pass_id=pass_id,
                    procedure=proc,
                    layout=layout,
                )
            )
        bad: Optional[str] = None
        if target % INSTRUCTION_BYTES:
            bad = f"misaligned target {target:#x}"
        elif not image.text_base <= target < image.text_end:
            bad = f"target {target:#x} outside the text segment"
        elif target not in decoded:
            bad = f"target {target:#x} is not an instruction boundary"
        elif instruction.opcode in _BRANCHES and _owner(image, target) != proc:
            bad = (
                f"branch target {target:#x} crosses from procedure "
                f"{proc!r} into {_owner(image, target)!r}"
            )
        elif instruction.opcode is Opcode.CALL and target not in entries:
            bad = f"call target {target:#x} is not a procedure entry"
        if bad is not None:
            out.append(
                Diagnostic(
                    code="RL014",
                    severity=Severity.ERROR,
                    message=(
                        f"{instruction.opcode.value} at "
                        f"{instruction.address:#x}: {bad}"
                    ),
                    pass_id=pass_id,
                    procedure=proc,
                    layout=layout,
                )
            )
    return out


def check_recovery(
    image: BinaryImage, pass_id: str = "binary-recovery", layout: Optional[str] = None
) -> List[Diagnostic]:
    """RL015/RL016/RL017: recovered-CFG hygiene for one image."""
    out: List[Diagnostic] = []
    try:
        cfg = recover(image)
    except RecoveryError as exc:
        out.append(
            Diagnostic(
                code="RL017",
                severity=Severity.ERROR,
                message=f"instruction stream does not decode consistently: {exc}",
                pass_id=pass_id,
                layout=layout,
            )
        )
        return out
    for proc in cfg.procedures:
        has_indirect = any(
            block.kind is Opcode.INDIRECT_JUMP for block in proc.blocks
        )
        reachable = {proc.entry}
        frontier = [proc.entry]
        while frontier:
            address = frontier.pop()
            if not proc.has_block_at(address):
                continue
            for successor in proc.block_at(address).successors():
                if proc.start <= successor < proc.end and successor not in reachable:
                    reachable.add(successor)
                    frontier.append(successor)
        for block in proc.blocks:
            if (
                block.kind is Opcode.UNCOND_BRANCH
                and block.taken_target == block.end
            ):
                out.append(
                    Diagnostic(
                        code="RL015",
                        severity=Severity.WARNING,
                        message=(
                            f"dead padding: jump at {block.end - INSTRUCTION_BYTES:#x} "
                            "targets the next instruction"
                        ),
                        pass_id=pass_id,
                        procedure=proc.name,
                        layout=layout,
                    )
                )
            if not has_indirect and block.start not in reachable:
                out.append(
                    Diagnostic(
                        code="RL015",
                        severity=Severity.WARNING,
                        message=(
                            f"recovered block at {block.start:#x} is "
                            "unreachable from the procedure entry"
                        ),
                        pass_id=pass_id,
                        procedure=proc.name,
                        layout=layout,
                    )
                )
            if block.fall_target is not None and block.fall_target >= proc.end:
                out.append(
                    Diagnostic(
                        code="RL016",
                        severity=Severity.ERROR,
                        message=(
                            f"control falls off the end of the procedure "
                            f"after {block.end - INSTRUCTION_BYTES:#x}"
                        ),
                        pass_id=pass_id,
                        procedure=proc.name,
                        layout=layout,
                    )
                )
    return out


def verify_image(
    image: BinaryImage, layout: Optional[str] = None
) -> List[Diagnostic]:
    """Run both binary verifier stages over one image."""
    return check_encoding(image, layout=layout) + check_recovery(
        image, layout=layout
    )


def _linked_image(
    label: str, layout: ProgramLayout, pass_id: str, out: List[Diagnostic]
) -> Optional[BinaryImage]:
    try:
        return BinaryImage.from_linked(LinkedProgram(layout))
    except Exception as exc:
        out.append(
            Diagnostic(
                code="RL017",
                severity=Severity.ERROR,
                message=f"layout could not be linked for binary checking: {exc}",
                pass_id=pass_id,
                layout=label,
            )
        )
        return None


def pass_binary_encoding(ctx: "LintContext") -> List[Diagnostic]:
    """Verifier pass: RL013/RL014 over every layout's linked image."""
    out: List[Diagnostic] = []
    for label, layout in ctx.layouts.items():
        image = _linked_image(label, layout, "binary-encoding", out)
        if image is not None:
            out.extend(check_encoding(image, "binary-encoding", label))
    return out


def pass_binary_recovery(ctx: "LintContext") -> List[Diagnostic]:
    """Verifier pass: RL015/RL016/RL017 over every layout's linked image."""
    out: List[Diagnostic] = []
    for label, layout in ctx.layouts.items():
        image = _linked_image(label, layout, "binary-recovery", out)
        if image is not None:
            out.extend(check_recovery(image, "binary-recovery", label))
    return out
