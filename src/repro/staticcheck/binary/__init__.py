"""Binary-level translation validation.

This package closes the circularity gap left by the source-level verifier
passes: instead of checking a layout against the CFG metadata it was derived
from, it re-derives a CFG from the raw linked instruction stream alone
(:mod:`recover`), lints the encoded stream (:mod:`encoding`, RL013-RL017)
and proves the aligned binary bisimilar to the original binary
(:mod:`equiv`) without executing a single instruction.
"""

from .encoding import verify_image
from .equiv import (
    EquivalenceError,
    EquivalenceProof,
    ProcedureProof,
    check_proof,
    proof_key,
    prove_cfgs,
    prove_layouts,
    prove_meld,
    prove_meld_layouts,
)
from .recover import (
    BinaryImage,
    RecoveredBlock,
    RecoveredCFG,
    RecoveredProcedure,
    RecoveryError,
    recover,
    recover_layout,
)

__all__ = [
    "BinaryImage",
    "EquivalenceError",
    "EquivalenceProof",
    "ProcedureProof",
    "RecoveredBlock",
    "RecoveredCFG",
    "RecoveredProcedure",
    "RecoveryError",
    "check_proof",
    "proof_key",
    "prove_cfgs",
    "prove_layouts",
    "prove_meld",
    "prove_meld_layouts",
    "recover",
    "recover_layout",
    "verify_image",
]
