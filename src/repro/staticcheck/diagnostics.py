"""Diagnostics for the static CFG/layout verifier (``repro lint``).

Every finding carries a stable ``RLxxx`` code, a severity, and the most
precise location the emitting pass can name (procedure, block, layout
label).  Codes are append-only: a code's meaning never changes, so CI
assertions and suppression lists written against one release keep
working against the next.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..cfg import BlockId

#: Schema version of the machine-readable lint report.
REPORT_SCHEMA_VERSION = 1


class Severity(enum.Enum):
    """How bad a finding is."""

    #: The artifact is wrong: running it would produce wrong numbers or
    #: crash.  Lint findings of this severity fail the runner's ``lint``
    #: stage as :class:`~repro.runner.errors.ValidationError`.
    ERROR = "error"
    #: Suspicious but not provably wrong (e.g. unreachable code).
    WARNING = "warning"
    #: Informational (statistics, estimator notes).
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


#: The stable diagnostic-code catalog.  Append-only; never renumber.
CODES: Dict[str, str] = {
    "RL000": "internal: a verifier pass crashed on malformed input",
    "RL001": "duplicate or missing block id in a procedure",
    "RL002": "procedure entry block missing or not unique/first",
    "RL003": "terminator kind inconsistent with the block's out-edges",
    "RL004": "branch or edge target does not resolve to a known block",
    "RL005": "fall-through successor not adjacent after lowering",
    "RL006": "lowered address map has an overlap, hole or misalignment",
    "RL007": "block unreachable from the procedure entry",
    "RL008": "profiled edge absent from the CFG (or negative count)",
    "RL009": "profile flow not conserved at a block",
    "RL010": "conditional branch sense not invertible as placed",
    "RL011": "layout is not a permutation of the procedure's blocks",
    "RL012": "control transfer retargeted at a wrong block",
    "RL013": "direct transfer displacement exceeds the encodable range",
    "RL014": "control-transfer target invalid in the linked image",
    "RL015": "dead padding or unreachable code in the recovered stream",
    "RL016": "control flow falls off the end of a procedure",
    "RL017": "instruction stream does not decode to a consistent CFG",
    "RL018": "applied meld lacks legality-analyzer approval (illegal meld)",
    "RL019": "meld clobbers a decision stream that is still live",
    "RL020": "meld reorders observable side effects across region arms",
    "RL021": "recorded meld region shape contradicts the dominator tree",
    "RL022": "static branch prediction diverges from the measured profile",
    "RL023": "static probability or propagated flow violates an invariant",
    "RL024": "static prediction confidence is miscalibrated (report)",
}


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding."""

    code: str
    severity: Severity
    message: str
    pass_id: str = ""
    procedure: Optional[str] = None
    block: Optional[BlockId] = None
    #: Label of the layout being verified ("orig", "greedy", "try15-btb")
    #: for layout/lowering findings; ``None`` for CFG/profile findings.
    layout: Optional[str] = None

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def location(self) -> str:
        """Human-readable ``proc:block`` (or ``-``) location string."""
        parts: List[str] = []
        if self.layout is not None:
            parts.append(f"[{self.layout}]")
        if self.procedure is not None:
            loc = self.procedure
            if self.block is not None:
                loc += f":{self.block}"
            parts.append(loc)
        return " ".join(parts) or "-"

    def render(self) -> str:
        return (
            f"{self.code} {self.severity.value:<7} {self.location:<28} "
            f"{self.message}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "pass": self.pass_id,
            "procedure": self.procedure,
            "block": self.block,
            "layout": self.layout,
            "message": self.message,
        }


@dataclass
class PassOutcome:
    """What one verifier pass produced over one lint run."""

    pass_id: str
    description: str
    findings: List[Diagnostic] = field(default_factory=list)
    crashed: bool = False

    @property
    def passed(self) -> bool:
        return not self.crashed and not any(
            d.severity is Severity.ERROR for d in self.findings
        )


@dataclass
class LintReport:
    """Everything one lint run found, renderable as text or JSON."""

    subject: str
    outcomes: List[PassOutcome] = field(default_factory=list)
    #: Labels of the layouts that were verified after lowering.
    layouts: List[str] = field(default_factory=list)

    @property
    def findings(self) -> List[Diagnostic]:
        out = [d for o in self.outcomes for d in o.findings]
        out.sort(key=lambda d: (d.severity.rank, d.code, d.location))
        return out

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.findings if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.findings if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no error-severity finding was produced."""
        return not self.errors

    def codes(self) -> List[str]:
        """Distinct diagnostic codes present, sorted."""
        return sorted({d.code for d in self.findings})

    def summary(self) -> str:
        errors, warnings = len(self.errors), len(self.warnings)
        if not errors and not warnings:
            return f"{self.subject}: clean ({len(self.outcomes)} passes)"
        head = ", ".join(
            f"{d.code} {d.location}: {d.message}" for d in self.errors[:3]
        )
        more = "" if len(self.errors) <= 3 else f" (+{len(self.errors) - 3} more)"
        return (
            f"{self.subject}: {errors} error(s), {warnings} warning(s)"
            + (f" — {head}{more}" if head else "")
        )

    def render(self) -> str:
        lines = [f"lint: {self.subject}"]
        if self.layouts:
            lines.append(f"layouts verified: {', '.join(self.layouts)}")
        width = max((len(o.pass_id) for o in self.outcomes), default=0)
        for outcome in self.outcomes:
            status = "PASS" if outcome.passed else "FAIL"
            lines.append(
                f"{status:<4}  {outcome.pass_id:<{width}}  {outcome.description}"
            )
        for finding in self.findings:
            lines.append("  " + finding.render())
        errors, warnings = len(self.errors), len(self.warnings)
        lines.append(
            f"{sum(o.passed for o in self.outcomes)}/{len(self.outcomes)} passes clean"
            + (f" — {errors} error(s), {warnings} warning(s)" if errors or warnings else "")
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """The machine-readable report (see docs/static-analysis.md)."""
        return {
            "schema": REPORT_SCHEMA_VERSION,
            "subject": self.subject,
            "layouts": list(self.layouts),
            "passes": [
                {
                    "id": o.pass_id,
                    "description": o.description,
                    "passed": o.passed,
                    "findings": len(o.findings),
                }
                for o in self.outcomes
            ],
            "findings": [d.to_dict() for d in self.findings],
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "codes": self.codes(),
                "ok": self.ok,
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False)


def worst_severity(findings: Sequence[Diagnostic]) -> Optional[Severity]:
    """The most severe severity present, or ``None`` when empty."""
    if not findings:
        return None
    return min((d.severity for d in findings), key=lambda s: s.rank)
