"""Static branch prediction from program structure alone.

The measured-profile pipeline needs an execution before it can align a
single block.  This module removes that dependency: every conditional
site is scored by *structural* heuristics in the Ball–Larus tradition,
computed entirely from the cached :class:`AnalysisManager` dataflow
(dominators, postdominators, natural loops).  Behaviour objects — the
ground truth the simulator consults — are never read; two programs with
the same CFG shape get the same predictions, so the predictor is fully
deterministic and genuinely trace-free.

Each heuristic that fires casts a vote: a predicted direction plus the
fixed hit-rate assumed for that heuristic.  Votes are fused with the
Dempster–Shafer evidence combination Wu & Larus used for the same job:
starting from an uninformative 0.5, each vote with taken-probability
``h`` updates the estimate ``p`` to ``p·h / (p·h + (1-p)·(1-h))``.  The
result is a per-site taken-probability in (0, 1) plus a confidence
(how far the evidence moved us from 50/50), which downstream consumers
use to damp low-evidence decisions.

The heuristics (all structural, in evaluation order):

* **loop-branch** — the taken edge is a natural-loop back edge; loops
  iterate, so predict taken (the paper's originals run 54–97% taken
  precisely because of these edges).
* **loop-exit** — the site sits inside a loop and exactly one successor
  leaves the loop body; predict the in-loop side.
* **guard-size** — a diamond whose arms are both pure straight-line
  code (no calls, no sub-loops, no nested control) but lopsided in
  size; predict the larger arm — the small one is fixup code.
* **opcode-class** — one successor terminates in a return; error/early
  exits are rare, predict the other side.
* **call-adjacent** — exactly one successor block performs a call and
  does not postdominate the site; calls guard rarely-entered
  subsystems, predict the call-free side.
* **taken-prior** — for diamonds with no stronger signal the paper's
  measurement stands in as a prior: 1993 compilers put the common case
  of an if/else on the *taken* edge often enough that conditionals ran
  62% taken overall.
* **layout-prior** — the weakest signal of all: the original
  fall-through placement is itself a (poor) prediction.  It fires at
  every site and only decides when nothing else votes, biasing
  no-evidence sites toward the existing layout so a downstream aligner
  leaves them alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..cfg import (
    BlockId,
    NaturalLoop,
    Procedure,
    Program,
    TerminatorKind,
    postdominates,
)
from .dataflow import AnalysisManager, ProgramAnalyses

__all__ = [
    "DEFAULT_CONFIG",
    "HEURISTICS",
    "HeuristicConfig",
    "HeuristicVote",
    "PredictionReport",
    "SitePrediction",
    "combine_votes",
    "predict_procedure",
    "predict_program",
]

#: Every heuristic name, in evaluation order (stable: reports and the
#: calibration lint key off these strings).
HEURISTICS = (
    "loop-branch",
    "loop-exit",
    "guard-size",
    "opcode-class",
    "call-adjacent",
    "taken-prior",
    "layout-prior",
)


@dataclass(frozen=True)
class HeuristicConfig:
    """Assumed hit-rates per heuristic (all tunable, all in (0.5, 1]).

    The defaults follow the Ball–Larus measurements where one exists
    (loop branches ~88%, loop exits ~80%).  ``taken_prior`` is pitched
    *above* the source paper's 62% overall-taken figure on purpose: a
    barely-taken prior leaves the alignment cost model statically
    near-tied at diamond sites, and the windowed search then resolves
    the tie with whatever orientation suits its chain building — which
    can be a 95%-mispredicted placement at a site the prior actually
    called correctly.  A decisive prior makes the search commit to the
    taken-hot orientation, which empirically never loses to the original
    layout on the suite (see results/static_profile.md).  ``guard_ratio``
    is the minimum size imbalance before guard-size fires;
    ``layout_prior`` is deliberately barely above 0.5 so it never
    overrules evidence.
    """

    loop_branch: float = 0.88
    loop_exit: float = 0.80
    guard_size: float = 0.70
    guard_ratio: float = 2.0
    opcode_class: float = 0.72
    call_adjacent: float = 0.60
    taken_prior: float = 0.72
    layout_prior: float = 0.52

    def __post_init__(self) -> None:
        for name in (
            "loop_branch", "loop_exit", "guard_size", "opcode_class",
            "call_adjacent", "taken_prior", "layout_prior",
        ):
            rate = getattr(self, name)
            if not 0.5 <= rate <= 1.0:
                raise ValueError(f"heuristic hit-rate {name}={rate} not in [0.5, 1]")
        if self.guard_ratio < 1.0:
            raise ValueError(f"guard_ratio must be >= 1, got {self.guard_ratio}")


#: The configuration every pipeline entry point defaults to.
DEFAULT_CONFIG = HeuristicConfig()


@dataclass(frozen=True)
class HeuristicVote:
    """One heuristic's verdict at one site."""

    heuristic: str
    #: True when the heuristic predicts the taken edge.
    taken: bool
    #: Assumed probability that this heuristic is right.
    hit_rate: float

    @property
    def p_taken(self) -> float:
        """The vote as a taken-probability."""
        return self.hit_rate if self.taken else 1.0 - self.hit_rate


def combine_votes(votes: Sequence[HeuristicVote]) -> float:
    """Dempster–Shafer fusion of independent votes, starting at 0.5."""
    p = 0.5
    for vote in votes:
        h = vote.p_taken
        num = p * h
        p = num / (num + (1.0 - p) * (1.0 - h))
    return p


@dataclass(frozen=True)
class SitePrediction:
    """The fused prediction for one conditional branch site."""

    procedure: str
    block: BlockId
    p_taken: float
    votes: Tuple[HeuristicVote, ...]

    @property
    def confidence(self) -> float:
        """How far the evidence moved us from 50/50, in [0, 1]."""
        return abs(2.0 * self.p_taken - 1.0)

    @property
    def predicts_taken(self) -> bool:
        return self.p_taken > 0.5

    @property
    def heuristics(self) -> Tuple[str, ...]:
        """Names of the heuristics that fired, in evaluation order."""
        return tuple(v.heuristic for v in self.votes)

    def to_dict(self) -> Dict[str, object]:
        return {
            "procedure": self.procedure,
            "block": self.block,
            "p_taken": self.p_taken,
            "confidence": self.confidence,
            "heuristics": [
                {"name": v.heuristic, "taken": v.taken, "hit_rate": v.hit_rate}
                for v in self.votes
            ],
        }


@dataclass
class PredictionReport:
    """Every site prediction for one program."""

    sites: List[SitePrediction]
    config: HeuristicConfig = DEFAULT_CONFIG

    def site(self, procedure: str, block: BlockId) -> Optional[SitePrediction]:
        """The prediction at one site, or None for non-conditional ids."""
        for prediction in self.sites:
            if prediction.procedure == procedure and prediction.block == block:
                return prediction
        return None

    def for_procedure(self, procedure: str) -> List[SitePrediction]:
        return [s for s in self.sites if s.procedure == procedure]

    def taken_probabilities(self, procedure: str) -> Dict[BlockId, float]:
        """block id -> p_taken for one procedure (propagation input)."""
        return {s.block: s.p_taken for s in self.for_procedure(procedure)}

    def to_dict(self) -> Dict[str, object]:
        return {
            "sites": [s.to_dict() for s in self.sites],
            "site_count": len(self.sites),
        }


# ---------------------------------------------------------------------------
# Per-site heuristic evaluation
# ---------------------------------------------------------------------------


def _innermost_loop(
    loops: Sequence[NaturalLoop], bid: BlockId
) -> Optional[NaturalLoop]:
    """The smallest natural loop containing ``bid``, if any."""
    best: Optional[NaturalLoop] = None
    for loop in loops:
        if bid in loop.body and (best is None or loop.size < best.size):
            best = loop
    return best


def _dominated_blocks(
    root: BlockId, children: Dict[BlockId, List[BlockId]]
) -> Set[BlockId]:
    """All blocks in ``root``'s dominator subtree, ``root`` included."""
    out: Set[BlockId] = set()
    stack = [root]
    while stack:
        bid = stack.pop()
        if bid in out:
            continue
        out.add(bid)
        stack.extend(children.get(bid, ()))
    return out


def _straightline_arm_size(
    proc: Procedure, arm: Set[BlockId], headers: Set[BlockId]
) -> Optional[int]:
    """Total size of a pure straight-line arm, or None if it is not one.

    A guard's fixup arm is plain code: no calls, no nested control flow,
    no loops.  Anything richer disqualifies the guard-size heuristic —
    arm size stops being a proxy for "rarely executed fixup".
    """
    total = 0
    for bid in arm:
        block = proc.blocks.get(bid)
        if block is None:
            return None
        if block.calls or bid in headers:
            return None
        if block.kind not in (TerminatorKind.FALLTHROUGH, TerminatorKind.UNCOND):
            return None
        total += block.size
    return total


def predict_procedure(
    proc: Procedure,
    manager: Optional[AnalysisManager] = None,
    config: HeuristicConfig = DEFAULT_CONFIG,
) -> List[SitePrediction]:
    """Score every conditional site of one procedure."""
    if manager is None:
        manager = AnalysisManager(proc)
    loops = manager.loops()
    ipdom = manager.postdominators()
    idom = manager.dominators()
    back_edges: Set[Tuple[BlockId, BlockId]] = set()
    headers: Set[BlockId] = set()
    for loop in loops:
        headers.add(loop.header)
        back_edges.update(loop.back_edges)
    children: Dict[BlockId, List[BlockId]] = {}
    for bid, parent in idom.items():
        if parent is not None:
            children.setdefault(parent, []).append(bid)

    predictions: List[SitePrediction] = []
    for bid in proc.conditional_sites():
        taken_edge = proc.taken_edge(bid)
        fall_edge = proc.fallthrough_edge(bid)
        if taken_edge is None or fall_edge is None:
            continue  # corrupted CFG; the lint passes flag it elsewhere
        succ_t, succ_f = taken_edge.dst, fall_edge.dst
        block_t = proc.blocks.get(succ_t)
        block_f = proc.blocks.get(succ_f)
        if block_t is None or block_f is None:
            continue  # dangling edge in a corrupted CFG
        votes: List[HeuristicVote] = []

        # loop-branch: a back edge iterates.
        if (bid, succ_t) in back_edges:
            votes.append(HeuristicVote("loop-branch", True, config.loop_branch))
        elif (bid, succ_f) in back_edges:
            votes.append(HeuristicVote("loop-branch", False, config.loop_branch))

        # loop-exit: stay inside the loop.
        loop = _innermost_loop(loops, bid)
        if loop is not None:
            t_in = succ_t in loop.body
            f_in = succ_f in loop.body
            if t_in != f_in:
                votes.append(HeuristicVote("loop-exit", t_in, config.loop_exit))

        # The taken successor of an if-without-else postdominates the
        # site (it is the join); a diamond has an arm on both edges.
        diamond = not (
            postdominates(ipdom, succ_t, bid) or postdominates(ipdom, succ_f, bid)
        )

        if diamond:
            taken_arm = _straightline_arm_size(
                proc, _dominated_blocks(succ_t, children), headers
            )
            fall_arm = _straightline_arm_size(
                proc, _dominated_blocks(succ_f, children), headers
            )
            if taken_arm and fall_arm:
                if taken_arm >= config.guard_ratio * fall_arm:
                    votes.append(HeuristicVote("guard-size", True, config.guard_size))
                elif fall_arm >= config.guard_ratio * taken_arm:
                    votes.append(HeuristicVote("guard-size", False, config.guard_size))

        # opcode-class: a return successor is an early/error exit.
        t_ret = block_t.kind is TerminatorKind.RETURN
        f_ret = block_f.kind is TerminatorKind.RETURN
        if t_ret != f_ret:
            votes.append(HeuristicVote("opcode-class", f_ret, config.opcode_class))

        # call-adjacent: a call-bearing successor guards a subsystem.
        t_call = bool(block_t.calls)
        f_call = bool(block_f.calls)
        if t_call != f_call:
            call_succ = succ_t if t_call else succ_f
            if not postdominates(ipdom, call_succ, bid):
                votes.append(
                    HeuristicVote("call-adjacent", f_call, config.call_adjacent)
                )

        if diamond:
            votes.append(HeuristicVote("taken-prior", True, config.taken_prior))

        # layout-prior always fires: the original placement is itself a
        # weak prediction, and it breaks no-evidence ties toward the
        # existing layout.
        votes.append(HeuristicVote("layout-prior", False, config.layout_prior))

        p = combine_votes(votes)
        # Clamp away from the poles so propagation multipliers and the
        # downstream 2-bit-counter model stay finite.
        p = min(max(p, 0.01), 0.99)
        predictions.append(
            SitePrediction(
                procedure=proc.name,
                block=bid,
                p_taken=p,
                votes=tuple(votes),
            )
        )
    return predictions


def predict_program(
    program: Program,
    analyses: Optional[ProgramAnalyses] = None,
    config: HeuristicConfig = DEFAULT_CONFIG,
) -> PredictionReport:
    """Score every conditional site of every procedure."""
    if analyses is None:
        analyses = ProgramAnalyses()
    sites: List[SitePrediction] = []
    for proc in program:
        sites.extend(predict_procedure(proc, analyses.for_procedure(proc), config))
    return PredictionReport(sites=sites, config=config)
