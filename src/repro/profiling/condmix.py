"""The shared conditional-mix helper (taken vs fall-through counts).

Both the simulator (counting conditionals in a live event stream) and
the profile layer (querying recorded edge weights) need the same tiny
abstraction: a (taken, fall-through) pair with derived totals.  This
module is that single definition; :meth:`EdgeProfile.cond_mix` returns
one and :class:`CondMixListener` accumulates one, replacing the two
private implementations that used to live in ``sim/metrics.py`` and
``profiling/edge_profile.py``.

It is also the canonical home of :func:`stationary_two_bit_rates`, the
closed-form 2-bit-counter model shared by the static cost estimator and
the static branch predictor; ``condmix`` is a leaf module both layers
may import without cycling through ``core``.
"""

from __future__ import annotations

from typing import NamedTuple, Tuple

#: Event-kind code of a conditional branch.  Mirrors
#: :data:`repro.sim.trace.COND`; hardcoded here because the profiling
#: layer must not import the sim layer (profiler -> sim -> profiling
#: would cycle).  :mod:`repro.sim.trace` asserts the two stay equal.
COND_KIND = 0


class CondMix(NamedTuple):
    """Execution counts of a conditional: taken vs fall-through.

    A ``NamedTuple`` so existing ``taken, fall = ...`` unpacking keeps
    working wherever a plain pair used to be returned.
    """

    taken: int
    fall: int

    @property
    def executed(self) -> int:
        """Total executions of the conditional."""
        return self.taken + self.fall

    @property
    def taken_fraction(self) -> float:
        """Taken fraction, 0.0 for a never-executed conditional."""
        executed = self.executed
        return self.taken / executed if executed else 0.0


class CondMixListener:
    """Event listener counting executed/taken conditional branches."""

    def __init__(self) -> None:
        self.taken = 0
        self.fall = 0

    def on_event(self, event) -> None:
        """Count one event if it is a conditional branch."""
        if event[0] == COND_KIND:
            if event[3]:
                self.taken += 1
            else:
                self.fall += 1

    @property
    def executed(self) -> int:
        return self.taken + self.fall

    @property
    def mix(self) -> CondMix:
        """The accumulated counts as a :class:`CondMix`."""
        return CondMix(self.taken, self.fall)


def stationary_two_bit_rates(p_taken: float) -> Tuple[float, float]:
    """Steady-state behaviour of a 2-bit saturating counter on a
    Bernoulli(``p_taken``) branch.

    The counter is a birth–death chain on states {0,1,2,3} with up-rate
    ``p`` and down-rate ``1 - p``; its stationary distribution gives the
    probability ``P_T`` of predicting taken (states 2 and 3):

        r = p / (1 - p);   P_T = (r^2 + r^3) / (1 + r + r^2 + r^3)

    Returns ``(P_T, mispredict_rate)`` where the mispredict rate is
    ``P_T * (1 - p) + (1 - P_T) * p``.  The static branch-cost estimator
    uses this to model the PHT and BTB direction counters without a
    trace; the model is exact for independent outcomes and a known upper
    bound miscount for strictly alternating or loop-exit patterns.
    """
    if not 0.0 <= p_taken <= 1.0:
        raise ValueError(f"taken probability must be in [0, 1], got {p_taken}")
    if p_taken == 0.0:
        return 0.0, 0.0
    if p_taken == 1.0:
        return 1.0, 0.0
    r = p_taken / (1.0 - p_taken)
    r2 = r * r
    p_predict_taken = (r2 + r2 * r) / (1.0 + r + r2 + r2 * r)
    mispredict_rate = p_predict_taken * (1.0 - p_taken) + (
        1.0 - p_predict_taken
    ) * p_taken
    return p_predict_taken, mispredict_rate
