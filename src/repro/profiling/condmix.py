"""The shared conditional-mix helper (taken vs fall-through counts).

Both the simulator (counting conditionals in a live event stream) and
the profile layer (querying recorded edge weights) need the same tiny
abstraction: a (taken, fall-through) pair with derived totals.  This
module is that single definition; :meth:`EdgeProfile.cond_mix` returns
one and :class:`CondMixListener` accumulates one, replacing the two
private implementations that used to live in ``sim/metrics.py`` and
``profiling/edge_profile.py``.
"""

from __future__ import annotations

from typing import NamedTuple

#: Event-kind code of a conditional branch.  Mirrors
#: :data:`repro.sim.trace.COND`; hardcoded here because the profiling
#: layer must not import the sim layer (profiler -> sim -> profiling
#: would cycle).  :mod:`repro.sim.trace` asserts the two stay equal.
COND_KIND = 0


class CondMix(NamedTuple):
    """Execution counts of a conditional: taken vs fall-through.

    A ``NamedTuple`` so existing ``taken, fall = ...`` unpacking keeps
    working wherever a plain pair used to be returned.
    """

    taken: int
    fall: int

    @property
    def executed(self) -> int:
        """Total executions of the conditional."""
        return self.taken + self.fall

    @property
    def taken_fraction(self) -> float:
        """Taken fraction, 0.0 for a never-executed conditional."""
        executed = self.executed
        return self.taken / executed if executed else 0.0


class CondMixListener:
    """Event listener counting executed/taken conditional branches."""

    def __init__(self) -> None:
        self.taken = 0
        self.fall = 0

    def on_event(self, event) -> None:
        """Count one event if it is a conditional branch."""
        if event[0] == COND_KIND:
            if event[3]:
                self.taken += 1
            else:
                self.fall += 1

    @property
    def executed(self) -> int:
        return self.taken + self.fall

    @property
    def mix(self) -> CondMix:
        """The accumulated counts as a :class:`CondMix`."""
        return CondMix(self.taken, self.fall)
