"""Profile collection (the ATOM substitute)."""

from .condmix import CondMix, CondMixListener, stationary_two_bit_rates
from .edge_profile import EdgeProfile
from .profiler import profile_program, profile_program_with_result
from .staticprofile import StaticProfile
from .storage import (
    FORMAT_VERSION,
    ProfileCorruptError,
    ProfileFormatError,
    ProfileVersionWarning,
    load_profile,
    profile_from_dict,
    profile_to_dict,
    save_profile,
)

__all__ = [
    "CondMix",
    "CondMixListener",
    "EdgeProfile",
    "FORMAT_VERSION",
    "ProfileCorruptError",
    "ProfileFormatError",
    "ProfileVersionWarning",
    "load_profile",
    "profile_from_dict",
    "profile_program",
    "profile_program_with_result",
    "profile_to_dict",
    "save_profile",
    "stationary_two_bit_rates",
    "StaticProfile",
]
