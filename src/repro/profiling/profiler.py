"""ATOM-style profiling: run the original binary once, collect edge counts."""

from __future__ import annotations

from typing import Optional, Tuple

from ..cfg import Program
from ..isa.encoder import link_identity
from ..sim.executor import ExecutionResult, execute
from .edge_profile import EdgeProfile


def profile_program(
    program: Program,
    seed: int = 0,
    max_events: Optional[int] = None,
) -> EdgeProfile:
    """Execute ``program`` in its original layout and collect edge counts.

    This is the paper's first simulator pass: "Each simulator was run once
    to collect information about branches ... and a second time to use
    profile information from the prior run."
    """
    profile, _result = profile_program_with_result(program, seed=seed, max_events=max_events)
    return profile


def profile_program_with_result(
    program: Program,
    seed: int = 0,
    max_events: Optional[int] = None,
) -> Tuple[EdgeProfile, ExecutionResult]:
    """Like :func:`profile_program` but also return the execution summary."""
    profile = EdgeProfile()
    linked = link_identity(program)
    result = execute(
        linked,
        profile_hook=profile.hook,
        seed=seed,
        max_events=max_events,
    )
    return profile, result
