"""A profile synthesised from static prediction instead of execution.

:class:`StaticProfile` subclasses :class:`EdgeProfile` and fills its
edge counts from the static predictor + frequency propagator
(:mod:`repro.staticcheck.predict`, :mod:`repro.staticcheck.propagate`)
instead of from an instrumented run.  Because it *is* an
``EdgeProfile``, every consumer — the cost models, all aligners, the
static estimator, the experiment drivers — works unchanged; profile-free
alignment is a one-line swap of the profile object.

Frequencies are per-procedure (entry frequency 1.0), which is all the
aligners need: alignment decisions are made one procedure at a time, so
only relative intra-procedure weights matter.  The float frequencies
are quantised onto an integer grid (``scale`` counts per procedure
entry) because the ``EdgeProfile`` contract is integer counts; the
default grid of 2**20 keeps three-decimal-place probability
distinctions representable even inside damped 200-trip loops.

The imports of the staticcheck machinery happen lazily inside
:meth:`StaticProfile.from_program`: ``staticcheck`` imports the
profiling layer (the estimator consumes measured profiles), so a
module-level import here would cycle.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..cfg import Program
from .edge_profile import EdgeProfile

__all__ = ["DEFAULT_SCALE", "StaticProfile"]

#: Integer counts per procedure entry when quantising frequencies.
DEFAULT_SCALE = 1 << 20


class StaticProfile(EdgeProfile):
    """An :class:`EdgeProfile` predicted from program structure alone.

    Instances also retain the intermediate artefacts (the per-site
    :class:`~repro.staticcheck.predict.PredictionReport` and per-procedure
    :class:`~repro.staticcheck.propagate.FrequencyMap` objects) so the CLI
    and the lint passes can audit how the counts came about without
    re-running the predictor.
    """

    def __init__(self, scale: int = DEFAULT_SCALE) -> None:
        super().__init__()
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.scale = scale
        #: :class:`repro.staticcheck.predict.PredictionReport` (set by
        #: :meth:`from_program`; ``None`` for a hand-built instance).
        self.report: Optional[Any] = None
        #: procedure name -> :class:`repro.staticcheck.propagate.FrequencyMap`.
        self.frequencies: Dict[str, Any] = {}

    @classmethod
    def from_program(
        cls,
        program: Program,
        scale: int = DEFAULT_SCALE,
        config: Optional[Any] = None,
        cp_max: Optional[float] = None,
    ) -> "StaticProfile":
        """Predict every branch and propagate flow over ``program``.

        ``config`` is a :class:`~repro.staticcheck.predict.HeuristicConfig`
        and ``cp_max`` the loop-damping bound; both default to the module
        defaults.  Deterministic: same program, same profile.
        """
        from ..staticcheck.dataflow import ProgramAnalyses
        from ..staticcheck.predict import DEFAULT_CONFIG, predict_program
        from ..staticcheck.propagate import CP_MAX, propagate_program

        analyses = ProgramAnalyses()
        report = predict_program(
            program, analyses, DEFAULT_CONFIG if config is None else config
        )
        frequencies = propagate_program(
            program,
            report,
            analyses,
            cp_max=CP_MAX if cp_max is None else cp_max,
        )
        profile = cls(scale=scale)
        profile.report = report
        profile.frequencies = frequencies
        for proc in program:
            fmap = frequencies[proc.name]
            for (src, dst), freq in fmap.edge_freq.items():
                count = int(round(freq * scale))
                if count > 0:
                    profile.set_weight(proc.name, src, dst, count)
        return profile
