"""Edge-execution profiles keyed by stable block ids.

Profiles are collected on the *original* binary and keyed by
(procedure, source block, destination block), so they remain valid after
the blocks are rearranged — exactly how the paper feeds one profiling run
into the alignment pass and then measures the aligned binary on the same
input.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..cfg import BlockId, EdgeKind, Procedure, Program, TerminatorKind
from .condmix import CondMix

EdgeKey = Tuple[BlockId, BlockId]


class EdgeProfile:
    """Execution counts for every traversed intra-procedural CFG edge."""

    def __init__(self) -> None:
        self._counts: Dict[str, Dict[EdgeKey, int]] = {}

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def hook(self, proc_name: str, src: BlockId, dst: BlockId) -> None:
        """Executor profile hook: bump the (src, dst) edge count."""
        per_proc = self._counts.get(proc_name)
        if per_proc is None:
            per_proc = self._counts[proc_name] = {}
        key = (src, dst)
        per_proc[key] = per_proc.get(key, 0) + 1

    def set_weight(self, proc_name: str, src: BlockId, dst: BlockId, count: int) -> None:
        """Directly set an edge weight (used by hand-built paper figures)."""
        self._counts.setdefault(proc_name, {})[(src, dst)] = count

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def weight(self, proc_name: str, src: BlockId, dst: BlockId) -> int:
        """Execution count of one edge (0 if never traversed)."""
        return self._counts.get(proc_name, {}).get((src, dst), 0)

    def proc_edges(self, proc_name: str) -> Dict[EdgeKey, int]:
        """All counted edges of one procedure."""
        return dict(self._counts.get(proc_name, {}))

    def procedures(self) -> List[str]:
        """Names of procedures with at least one counted edge."""
        return list(self._counts)

    def sorted_edges(
        self, proc: Procedure, min_weight: int = 1
    ) -> List[Tuple[EdgeKey, int]]:
        """The procedure's alignable edges, heaviest first.

        Only fall-through and taken edges participate in alignment; the
        paper gives all other edges weight zero.  Ties break on block ids
        so alignment is deterministic.
        """
        counts = self._counts.get(proc.name, {})
        out: List[Tuple[EdgeKey, int]] = []
        for edge in proc.edges:
            if edge.kind not in (EdgeKind.FALLTHROUGH, EdgeKind.TAKEN):
                continue
            weight = counts.get((edge.src, edge.dst), 0)
            if weight >= min_weight:
                out.append(((edge.src, edge.dst), weight))
        out.sort(key=lambda item: (-item[1], item[0]))
        return out

    def block_weight(self, proc: Procedure, bid: BlockId) -> int:
        """Estimated execution count of a block.

        For blocks with out-edges this is exact: each execution traverses
        exactly one out-edge.  Return blocks have no out-edges, so their
        in-edge sum is used (exact except for a procedure whose entry block
        returns, where invocations through calls are not edge-profiled).
        """
        counts = self._counts.get(proc.name, {})
        block = proc.block(bid)
        if block.kind is not TerminatorKind.RETURN:
            return sum(counts.get((bid, e.dst), 0) for e in proc.out_edges(bid))
        return sum(counts.get((e.src, bid), 0) for e in proc.in_edges(bid))

    def cond_mix(self, proc: Procedure, bid: BlockId) -> CondMix:
        """(taken, fall-through) execution counts of a conditional block.

        Weights are keyed by the *original* edge roles, independent of any
        later layout inversion; raises :class:`ValueError` for blocks that
        are not conditionals (they have no taken/fall-through pair).
        Returns a :class:`~repro.profiling.condmix.CondMix` (a named
        tuple, so ``taken, fall = ...`` unpacking still works).
        """
        block = proc.block(bid)
        if block.kind is not TerminatorKind.COND:
            raise ValueError(
                f"{proc.name}: block {bid} is {block.kind.value}, not cond"
            )
        taken = proc.taken_edge(bid)
        fall = proc.fallthrough_edge(bid)
        assert taken is not None and fall is not None
        return CondMix(
            self.weight(proc.name, bid, taken.dst),
            self.weight(proc.name, bid, fall.dst),
        )

    def taken_probability(self, proc: Procedure, bid: BlockId) -> float:
        """Fraction of a conditional's executions that took its branch.

        Returns 0.0 for conditionals the profile never saw execute — the
        convention the static cost estimator wants (an unexecuted branch
        contributes nothing either way).
        """
        w_taken, w_fall = self.cond_mix(proc, bid)
        executed = w_taken + w_fall
        return w_taken / executed if executed else 0.0

    def total_weight(self, proc_name: str) -> int:
        """Sum of all edge counts of a procedure."""
        return sum(self._counts.get(proc_name, {}).values())

    def merge(self, other: "EdgeProfile") -> "EdgeProfile":
        """Combine two profiles (e.g. from multiple inputs) into a new one."""
        merged = EdgeProfile()
        for source in (self, other):
            for proc_name, counts in source._counts.items():
                dest = merged._counts.setdefault(proc_name, {})
                for key, count in counts.items():
                    dest[key] = dest.get(key, 0) + count
        return merged

    def scaled(self, factor: float) -> "EdgeProfile":
        """A copy with every count scaled (rounded) by ``factor``."""
        scaled = EdgeProfile()
        for proc_name, counts in self._counts.items():
            scaled._counts[proc_name] = {
                key: int(round(count * factor)) for key, count in counts.items()
            }
        return scaled

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EdgeProfile):
            return NotImplemented
        return self._counts == other._counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        edges = sum(len(v) for v in self._counts.values())
        return f"EdgeProfile({len(self._counts)} procedures, {edges} edges)"
