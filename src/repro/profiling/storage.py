"""Profile persistence: save and reload edge profiles as JSON.

The paper's tooling stores profiles between the trace run and the
alignment link ("we used profile information from the prior run"), and
notes profiles from several inputs can be combined.  This module provides
that workflow: a versioned, human-diffable JSON format keyed by procedure
name and stable block ids.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Optional, Union

from ..atomicio import atomic_write_text
from .edge_profile import EdgeProfile

#: Schema version written into every file; bumped on incompatible change.
#: Version history:
#:   1 — procedures mapping only.
#:   2 — adds the ``integrity`` summary (procedure/edge counts and total
#:       weight), letting loaders reject truncated or tampered files
#:       before the numbers reach the aligner or simulator.
FORMAT_VERSION = 2

#: Versions this loader still understands.
SUPPORTED_VERSIONS = (1, 2)


class ProfileFormatError(ValueError):
    """Raised when a profile file is malformed or from a newer version."""


class ProfileCorruptError(ProfileFormatError):
    """A profile file is damaged on disk — truncated, torn, or tampered.

    Distinguishes *corruption* (bytes the writer never produced) from
    mere format drift, and pinpoints it: ``path`` names the file and
    ``offset`` the byte position where decoding failed (``None`` when
    the damage is semantic, e.g. an integrity-count mismatch).  The
    resilient runner classifies this as a validation failure — the unit
    is failed immediately, never retried.
    """

    def __init__(
        self,
        message: str,
        path: Optional[Union[str, Path]] = None,
        offset: Optional[int] = None,
    ):
        self.path = Path(path) if path is not None else None
        self.offset = offset
        where = ""
        if self.path is not None:
            where = f" [{self.path}" + (
                f" @ byte {offset}]" if offset is not None else "]"
            )
        super().__init__(message + where)


class ProfileVersionWarning(UserWarning):
    """Issued when loading a profile written by an older schema version."""


def profile_to_dict(profile: EdgeProfile) -> dict:
    """Serialise a profile to plain JSON-compatible data."""
    procedures = {}
    for name in profile.procedures():
        procedures[name] = [
            [src, dst, count]
            for (src, dst), count in sorted(profile.proc_edges(name).items())
        ]
    edges = sum(len(entries) for entries in procedures.values())
    total = sum(count for entries in procedures.values() for _, _, count in entries)
    return {
        "format": "repro-edge-profile",
        "version": FORMAT_VERSION,
        "integrity": {
            "procedures": len(procedures),
            "edges": edges,
            "total_weight": total,
        },
        "procedures": procedures,
    }


def _check_integrity(
    data: dict, profile: EdgeProfile, source: Optional[Union[str, Path]] = None
) -> None:
    integrity = data.get("integrity")
    if integrity is None:
        return
    if not isinstance(integrity, dict):
        raise ProfileFormatError("malformed integrity summary")
    actual = {
        "procedures": len(profile.procedures()),
        "edges": sum(len(profile.proc_edges(n)) for n in profile.procedures()),
        "total_weight": sum(profile.total_weight(n) for n in profile.procedures()),
    }
    for key, value in actual.items():
        expected = integrity.get(key)
        if expected is not None and expected != value:
            raise ProfileCorruptError(
                f"profile integrity check failed: {key} is {value}, "
                f"file claims {expected} (truncated or corrupted file?)",
                path=source,
            )


def profile_from_dict(
    data: dict, source: Optional[Union[str, Path]] = None
) -> EdgeProfile:
    """Rebuild a profile from :func:`profile_to_dict` data.

    Files written by an older (still-supported) schema version load with
    a :class:`ProfileVersionWarning`; newer or unknown versions are
    rejected here, at the boundary, rather than failing deep inside
    alignment or simulation.
    """
    if not isinstance(data, dict) or data.get("format") != "repro-edge-profile":
        raise ProfileFormatError("not a repro edge-profile document")
    version = data.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise ProfileFormatError(
            f"unsupported profile schema version {version!r} "
            f"(this reader supports {SUPPORTED_VERSIONS})"
        )
    if version < FORMAT_VERSION:
        warnings.warn(
            f"loading profile with old schema version {version} "
            f"(current {FORMAT_VERSION}); integrity checks unavailable — "
            f"re-save to upgrade",
            ProfileVersionWarning,
            stacklevel=2,
        )
    profile = EdgeProfile()
    procedures = data.get("procedures")
    if not isinstance(procedures, dict):
        raise ProfileFormatError("missing procedures mapping")
    for name, edges in procedures.items():
        for entry in edges:
            try:
                src, dst, count = entry
            except (TypeError, ValueError):
                raise ProfileFormatError(f"bad edge entry {entry!r} in {name!r}")
            if not all(isinstance(v, int) for v in (src, dst, count)) or count < 0:
                raise ProfileFormatError(f"bad edge entry {entry!r} in {name!r}")
            profile.set_weight(name, src, dst, count)
    if version >= 2:
        _check_integrity(data, profile, source=source)
    return profile


def save_profile(profile: EdgeProfile, path: Union[str, Path]) -> None:
    """Write a profile to ``path`` as JSON (atomically — see atomicio)."""
    atomic_write_text(path, json.dumps(profile_to_dict(profile), indent=1))


def load_profile(path: Union[str, Path]) -> EdgeProfile:
    """Read a profile previously written by :func:`save_profile`.

    Damage on disk raises :class:`ProfileCorruptError` naming the file
    and, where decoding pinpointed it, the byte offset of the damage:
    an empty file reports offset 0, undecodable JSON the decoder's
    failure position, and integrity-count mismatches the file alone.
    """
    path = Path(path)
    text = path.read_text()
    if not text.strip():
        raise ProfileCorruptError(
            "profile file is empty (interrupted write?)", path=path, offset=0
        )
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProfileCorruptError(
            f"invalid JSON: {exc.msg}", path=path, offset=exc.pos
        ) from exc
    return profile_from_dict(data, source=path)
