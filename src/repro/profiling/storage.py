"""Profile persistence: save and reload edge profiles as JSON.

The paper's tooling stores profiles between the trace run and the
alignment link ("we used profile information from the prior run"), and
notes profiles from several inputs can be combined.  This module provides
that workflow: a versioned, human-diffable JSON format keyed by procedure
name and stable block ids.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .edge_profile import EdgeProfile

#: Format version written into every file; bumped on incompatible change.
FORMAT_VERSION = 1


class ProfileFormatError(ValueError):
    """Raised when a profile file is malformed or from a newer version."""


def profile_to_dict(profile: EdgeProfile) -> dict:
    """Serialise a profile to plain JSON-compatible data."""
    procedures = {}
    for name in profile.procedures():
        procedures[name] = [
            [src, dst, count]
            for (src, dst), count in sorted(profile.proc_edges(name).items())
        ]
    return {"format": "repro-edge-profile", "version": FORMAT_VERSION,
            "procedures": procedures}


def profile_from_dict(data: dict) -> EdgeProfile:
    """Rebuild a profile from :func:`profile_to_dict` data."""
    if not isinstance(data, dict) or data.get("format") != "repro-edge-profile":
        raise ProfileFormatError("not a repro edge-profile document")
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ProfileFormatError(
            f"unsupported profile version {version!r} (expected {FORMAT_VERSION})"
        )
    profile = EdgeProfile()
    procedures = data.get("procedures")
    if not isinstance(procedures, dict):
        raise ProfileFormatError("missing procedures mapping")
    for name, edges in procedures.items():
        for entry in edges:
            try:
                src, dst, count = entry
            except (TypeError, ValueError):
                raise ProfileFormatError(f"bad edge entry {entry!r} in {name!r}")
            if not all(isinstance(v, int) for v in (src, dst, count)) or count < 0:
                raise ProfileFormatError(f"bad edge entry {entry!r} in {name!r}")
            profile.set_weight(name, src, dst, count)
    return profile


def save_profile(profile: EdgeProfile, path: Union[str, Path]) -> None:
    """Write a profile to ``path`` as JSON."""
    Path(path).write_text(json.dumps(profile_to_dict(profile), indent=1))


def load_profile(path: Union[str, Path]) -> EdgeProfile:
    """Read a profile previously written by :func:`save_profile`."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ProfileFormatError(f"invalid JSON in {path}: {exc}") from exc
    return profile_from_dict(data)
