"""Command-line interface: ``python -m repro <command>``.

Gives the library's main workflows a shell entry point:

* ``list`` — the 24-benchmark suite and its categories;
* ``profile`` — trace a benchmark, write an edge profile (JSON);
* ``align`` — align a benchmark with any registered algorithm and report
  per-architecture relative CPI (optionally reusing a saved profile, the
  paper's two-pass workflow);
* ``tournament`` — the alignment arena: every registered algorithm
  (``repro.core.registry``) against every architecture and benchmark off
  one shared decision trace, scored as pairwise win matrices over branch
  cost and fall-through rate (``--arena`` shards benchmark x algorithm
  units across the fabric);
* ``table2`` / ``table3`` / ``table4`` / ``figure4`` — regenerate the
  paper's evaluation artifacts (through the resilient runner: per-
  benchmark isolation, timeouts, retries, checkpoint/resume);
* ``lint`` — run the static verifier passes (``repro.staticcheck``)
  over a benchmark's CFG, profile and layouts; ``--estimate`` adds the
  trace-free branch-cost estimate cross-validated against the simulator;
* ``predict`` — profile-free branch prediction: heuristic per-site
  taken-probabilities, Wu–Larus frequency propagation, layout-
  opportunity hints at meld-blocked sites (``--compare`` grades the
  predictions against a measured trace; feeds ``tournament
  --profile-source static`` and claim 20);
* ``prove`` — recover a CFG from each aligned layout's raw linked
  instruction stream and statically prove it bisimilar to the original
  binary (translation validation; ``--json`` emits the proof artifacts);
* ``sweep`` — run a benchmarks x seeds sweep through the fault-tolerant
  fabric (``repro.fabric``): durable lease queue (``--queue DIR``,
  ``--resume``), supervised heartbeat workers (``--workers/--lease``),
  poison-unit quarantine, chaos injection (``--inject kill-worker,...``)
  and a consolidated SHA-256-manifested report;
* ``sensitivity`` — machine-sensitivity sweeps (mispredict penalty,
  issue width) for one benchmark;
* ``doctor`` — run the pipeline invariant checks standalone, audit /
  repair an artifact store (``--store DIR [--repair]``; cached decision
  traces are decoded and stale/corrupt entries flagged), inspect or
  repair a fabric queue (``--fabric DIR [--repair]``), or lint every
  registered workload (``--lint``);
* ``bench`` — time the trace-once/replay-many engine against the legacy
  execute-per-layout engine and write ``BENCH_PR4.json``;
* ``dot`` — emit a procedure's control-flow graph in Graphviz format.

Suite commands run on the replay engine by default; ``--engine
execute`` restores the legacy path, ``--replay-check`` differentially
checks every replay against a fresh execution, and ``--trace-cache
DIR`` persists captured decision traces across runs.

Exit codes: 0 success, 1 runtime failure, 2 usage error, 3 partial
suite results (some benchmarks failed; see the failure table).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

EXIT_OK = 0
EXIT_RUNTIME = 1
EXIT_USAGE = 2
EXIT_PARTIAL = 3


class UsageError(Exception):
    """A caller mistake (unknown benchmark, malformed flag value)."""

from .analysis import (
    branch_hotspots,
    compare_layout_quality,
    layout_quality,
    compute_table2,
    experiment_records,
    figure4_records,
    records_to_csv,
    table2_records,
    procedure_hotspots,
    render_hotspots,
    render_claims,
    verify_claims,
    format_table,
    issue_width_sweep,
    mispredict_penalty_sweep,
    penalty_breakdown,
    render_breakdown,
    render_figure4,
    render_table2,
    render_table3,
    render_table4,
)
from .cfg import CFGError, procedure_to_dot
from .core import CostAligner, GreedyAligner, TryNAligner, make_model
from .isa import LayoutError, ProgramLayout, diff_layouts, link, link_identity, render_diff, save_layout
from .profiling import ProfileFormatError, load_profile, profile_program, save_profile
from .runner import (
    ArtifactStore,
    FaultPlan,
    InvariantResult,
    RetryPolicy,
    RunnerConfig,
    RunnerError,
    SuiteRunResult,
    check_address_coverage,
    check_cfg,
    check_flow_conservation,
    check_layout_permutation,
    check_profile_consistency,
    parse_fault_spec,
    render_failure_table,
    render_invariant_report,
    render_partial_banner,
    run_figure4_resilient,
    run_suite_resilient,
)
from .sim.metrics import ALL_ARCHS, DYNAMIC_ARCHS, STATIC_ARCHS, simulate
from .workloads import SUITE, generate_benchmark


def _write(text: str, output: Optional[str]) -> None:
    if output:
        with open(output, "w") as handle:
            handle.write(text + "\n")
    else:
        print(text)


def _require_benchmark(name: str) -> str:
    if name not in SUITE:
        raise UsageError(
            f"unknown benchmark {name!r}; run `python -m repro list` for the suite"
        )
    return name


def _workload(args: argparse.Namespace):
    return generate_benchmark(_require_benchmark(args.benchmark), args.scale)


def _benchmark_list(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    names = [name.strip() for name in value.split(",") if name.strip()]
    unknown = [name for name in names if name not in SUITE]
    if unknown:
        raise UsageError(f"unknown benchmarks: {', '.join(unknown)}")
    return names


def _runner_config(args: argparse.Namespace) -> RunnerConfig:
    """Build the resilient-runner configuration from table/figure flags."""
    faults = None
    if getattr(args, "inject", None):
        try:
            specs = tuple(parse_fault_spec(spec) for spec in args.inject)
        except ValueError as exc:
            raise UsageError(str(exc))
        faults = FaultPlan(specs=specs, seed=args.seed)
        if any(s.kind == "corrupt-artifact" for s in specs) and not args.store:
            raise UsageError(
                "corrupt-artifact faults need an artifact store; add --store DIR"
            )
        if any(s.stage == "layout" for s in specs) and not (
            args.oracle or getattr(args, "prove", False)
        ):
            raise UsageError(
                "layout faults are only observable by the oracle or the "
                "prover; add --oracle or --prove"
            )
        if any(s.kind == "break-cfg" for s in specs) and not args.lint:
            raise UsageError(
                "break-cfg faults are only observable by the linter; add --lint"
            )
        if any(s.kind == "corrupt-trace" for s in specs) and not getattr(
            args, "trace_cache", None
        ):
            raise UsageError(
                "corrupt-trace faults corrupt the on-disk trace cache; "
                "add --trace-cache DIR"
            )
    if args.retries < 1:
        raise UsageError("--retries must be >= 1")
    if args.workers < 1:
        raise UsageError("--workers must be >= 1")
    if args.timeout is not None and args.timeout <= 0:
        raise UsageError("--timeout must be positive")
    if args.resume and args.checkpoint is None:
        raise UsageError("--resume requires --checkpoint FILE")
    return RunnerConfig(
        isolate=args.isolate or args.timeout is not None or args.workers > 1,
        max_workers=args.workers,
        timeout=args.timeout,
        retry=RetryPolicy(max_attempts=args.retries),
        checkpoint=args.checkpoint,
        resume=args.resume,
        faults=faults,
        oracle=args.oracle,
        prove=getattr(args, "prove", False),
        lint=args.lint,
        meld=getattr(args, "meld", False),
        store=args.store,
        engine=getattr(args, "engine", "replay"),
        replay_check=getattr(args, "replay_check", False),
        trace_cache=getattr(args, "trace_cache", None),
    )


def _finish_suite(
    result: SuiteRunResult, total: int, args: argparse.Namespace, text: str
) -> int:
    """Write a suite report, surfacing degradation explicitly."""
    if result.partial and not args.csv:
        text += (
            "\n\n" + render_partial_banner(result, total)
            + "\n" + render_failure_table(result.failures)
        )
    _write(text, args.output)
    if result.skipped:
        print(
            f"resumed: {len(result.skipped)} benchmark(s) restored from "
            f"checkpoint {result.checkpoint}",
            file=sys.stderr,
        )
    if result.partial:
        print(render_partial_banner(result, total), file=sys.stderr)
        print(render_failure_table(result.failures), file=sys.stderr)
        return EXIT_PARTIAL
    return EXIT_OK


def cmd_list(args: argparse.Namespace) -> int:
    width = max(len(name) for name in SUITE)
    for name, spec in SUITE.items():
        print(f"{name:<{width}}  {spec.category:<10}  {spec.description}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    program = _workload(args)
    profile = profile_program(program, seed=args.seed)
    save_profile(profile, args.output)
    total = sum(profile.total_weight(name) for name in profile.procedures())
    print(f"wrote {args.output}: {len(profile.procedures())} procedures, "
          f"{total:,} edge traversals")
    return 0


def _make_aligner(algorithm: str, arch: str, window: int):
    """Build one aligner: a registered name, or the legacy cost/tryn spellings."""
    from .core import aligner_names, make_aligner

    if algorithm == "cost":
        return CostAligner(make_model(arch))
    if algorithm == "tryn":
        return TryNAligner.for_architecture(arch, window=window)
    if algorithm in aligner_names():
        return make_aligner(algorithm, arch=arch, window=window)
    raise UsageError(f"unknown algorithm {algorithm!r}")


def _algorithm_choices() -> tuple:
    """Registry names plus the legacy model-parameterised spellings."""
    from .core import aligner_names

    return tuple(aligner_names()) + ("cost", "tryn")


def _algorithm_list(value: Optional[str]) -> Optional[List[str]]:
    """Parse ``--algorithms a,b,c`` against the registry."""
    from .core import aligner_names

    if value is None:
        return None
    names = [name.strip() for name in value.split(",") if name.strip()]
    unknown = [name for name in names if name not in aligner_names()]
    if unknown:
        raise UsageError(
            f"unknown algorithms: {', '.join(unknown)}; registered: "
            + ", ".join(aligner_names())
        )
    return names


def cmd_align(args: argparse.Namespace) -> int:
    program = _workload(args)
    if args.profile:
        profile = load_profile(args.profile)
    else:
        profile = profile_program(program, seed=args.seed)
    aligner = _make_aligner(args.algorithm, args.arch, args.window)
    layout = aligner.align(program, profile)
    if args.save_layout:
        save_layout(layout, args.save_layout)
        print(f"alignment map written to {args.save_layout}")
    if args.diff:
        print(render_diff(
            diff_layouts(ProgramLayout.identity(program), layout), profile
        ))
        print()

    inversions = jumps = removed = 0
    for name in program.order:
        proc_layout = layout[name]
        inversions += len(proc_layout.inverted_conditionals())
        jumps += len(proc_layout.inserted_jumps())
        removed += len(proc_layout.removed_branches())
    print(f"{args.algorithm} alignment ({args.arch} model): "
          f"{inversions} inverted conditionals, {jumps} inserted jumps, "
          f"{removed} removed branches")

    base = simulate(link_identity(program), profile, seed=args.seed)
    aligned = simulate(link(layout), profile, seed=args.seed)
    print(f"\n{'architecture':<18}{'orig CPI':>10}{'aligned':>10}{'gain %':>8}")
    for arch in ALL_ARCHS:
        before = base.relative_cpi(arch, base.instructions)
        after = aligned.relative_cpi(arch, base.instructions)
        print(f"{arch:<18}{before:>10.3f}{after:>10.3f}"
              f"{100 * (before - after) / before:>8.1f}")
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    rows = compute_table2(_benchmark_list(args.benchmarks), scale=args.scale,
                          seed=args.seed)
    if args.csv:
        _write(records_to_csv(table2_records(rows)).rstrip(), args.output)
    else:
        _write(render_table2(rows), args.output)
    return 0


def _suite_table(args: argparse.Namespace, archs: Sequence[str], render) -> int:
    names = _benchmark_list(args.benchmarks) or list(SUITE)
    result = run_suite_resilient(
        names, scale=args.scale, seed=args.seed, window=args.window,
        archs=archs, config=_runner_config(args),
    )
    if args.csv:
        text = records_to_csv(experiment_records(result.results)).rstrip()
    else:
        text = render(result.results)
    return _finish_suite(result, len(names), args, text)


def cmd_table3(args: argparse.Namespace) -> int:
    return _suite_table(args, STATIC_ARCHS, render_table3)


def cmd_table4(args: argparse.Namespace) -> int:
    return _suite_table(args, DYNAMIC_ARCHS, render_table4)


def cmd_figure4(args: argparse.Namespace) -> int:
    names = _benchmark_list(args.benchmarks)
    from .workloads import FIGURE4_PROGRAMS
    selected = names if names is not None else list(FIGURE4_PROGRAMS)
    result = run_figure4_resilient(
        selected, scale=args.scale, seed=args.seed, window=args.window,
        config=_runner_config(args),
    )
    if args.csv:
        text = records_to_csv(figure4_records(result.results)).rstrip()
    else:
        text = render_figure4(result.results)
    return _finish_suite(result, len(selected), args, text)


def _bad_traces(store: ArtifactStore) -> dict:
    """Cached decision traces that fail to decode, with the reason.

    Checksum-intact entries can still be unusable: written by an older
    trace schema or ISA encoding (stale fingerprint) or semantically
    malformed.  The runner re-captures those transparently; doctor
    surfaces them, ``--repair`` sweeps them out.
    """
    from .runner.store import ArtifactCorruptError as _Corrupt
    from .sim.decisions import TraceDecodeError, is_trace_key, validate_payload

    bad = {}
    for key in store.keys():
        if not is_trace_key(key):
            continue
        try:
            validate_payload(store.load(key), key)
        except TraceDecodeError as exc:
            bad[key] = exc.reason
        except _Corrupt as exc:
            bad[key] = exc.reason
    return bad


def _doctor_store(args: argparse.Namespace) -> int:
    """Audit (and with ``--repair`` fix) an artifact store's integrity."""
    store = ArtifactStore(args.store)
    if args.repair:
        stale = _bad_traces(store)
        for key in stale:
            store.quarantine(key)
        report = store.repair()
        lines = [report.render()]
        if stale:
            lines.append(
                f"{len(stale)} stale/corrupt cached trace(s) quarantined: "
                + ", ".join(f"{key} ({reason})" for key, reason in stale.items())
            )
        _write("\n".join(lines), args.output)
        return EXIT_OK
    verdicts = store.verify_all()
    stale = _bad_traces(store)
    lines = []
    for key, error in verdicts.items():
        if error is not None:
            status = f"FAIL ({error.reason})"
        elif key in stale:
            status = f"FAIL ({stale[key]})"
        else:
            status = "PASS"
        lines.append(f"{status:<24}  {key}")
    corrupt = sum(1 for e in verdicts.values() if e is not None) + len(
        [k for k in stale if verdicts.get(k) is None]
    )
    lines.append(
        f"{len(verdicts) - corrupt}/{len(verdicts)} artifacts intact"
        + (f" — rerun with --repair to quarantine {corrupt}" if corrupt else "")
    )
    _write("\n".join(lines), args.output)
    return EXIT_OK if not corrupt else EXIT_RUNTIME


def _lint_layouts(program, profile, arch: str, window: int, injector=None,
                  benchmark: str = "", attempt: int = 1):
    """Identity + aligned layouts for one lint run, layout faults applied.

    Returns ``(layouts, notes)``; an aligner that refuses the (possibly
    corrupted) input contributes a note instead of a layout, so linting
    a broken CFG still terminates with a report.
    """
    from .core import GreedyAligner as _Greedy, TryNAligner as _TryN

    builders = [
        ("orig", lambda: ProgramLayout.identity(program)),
        ("greedy", lambda: _Greedy().align(program, profile)),
        (f"try{window}-{arch}",
         lambda: _TryN.for_architecture(arch, window=window).align(program, profile)),
    ]
    layouts, notes = {}, []
    for label, build in builders:
        try:
            layout = build()
        except Exception as exc:
            notes.append(f"note: layout {label!r} could not be built "
                         f"({type(exc).__name__}: {exc})")
            continue
        if injector is not None:
            layout = injector.mutate_layout(benchmark, attempt, label, layout, profile)
        layouts[label] = layout
    return layouts, notes


def _static_context(program, notes: Optional[list] = None):
    """Build the RL022–RL024 static-prediction context, or None.

    A CFG corrupted by fault injection can defeat the predictor before
    any pass runs; linting must still terminate with a report, so the
    failure becomes a note instead of a crash.
    """
    from .staticcheck import StaticContext

    try:
        from .profiling import StaticProfile

        return StaticContext(profile=StaticProfile.from_program(program))
    except Exception as exc:
        if notes is not None:
            notes.append(
                f"note: static prediction unavailable "
                f"({type(exc).__name__}: {exc})"
            )
        return None


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the static verifier passes (and optionally the estimator)."""
    import json as _json

    from .runner import FaultInjector
    from .staticcheck import cross_validate, estimate_costs, run_lint

    program = _workload(args)
    if args.profile:
        profile = load_profile(args.profile)
    else:
        profile = profile_program(program, seed=args.seed)

    injector = None
    if args.inject:
        try:
            specs = tuple(parse_fault_spec(spec) for spec in args.inject)
        except ValueError as exc:
            raise UsageError(str(exc))
        injector = FaultInjector(FaultPlan(specs=specs, seed=args.seed))
        program = injector.break_cfg(args.benchmark, 1, program, profile)

    layouts, notes = _lint_layouts(
        program, profile, args.arch, args.window,
        injector=injector, benchmark=args.benchmark,
    )
    static = _static_context(program, notes)
    report = run_lint(
        program, profile, layouts, subject=args.benchmark, static=static
    )

    estimate_block = None
    if args.estimate and report.ok:
        linked = link_identity(program)
        estimate = estimate_costs(linked, profile)
        simulated = simulate(linked, profile, seed=args.seed)
        agreements = cross_validate(estimate, simulated)
        estimate_block = {
            "instructions": estimate.instructions,
            "simulated_instructions": simulated.instructions,
            "archs": {
                a.name: {
                    "estimated_cpi": a.estimated_cpi,
                    "simulated_cpi": a.simulated_cpi,
                    "relative_error": a.relative_error,
                }
                for a in agreements
            },
        }

    if args.json:
        payload = report.to_dict()
        if notes:
            payload["notes"] = notes
        if estimate_block is not None:
            payload["estimate"] = estimate_block
        _write(_json.dumps(payload, indent=2), args.output)
    else:
        lines = [report.render()]
        lines.extend(notes)
        if estimate_block is not None:
            lines.append("")
            lines.append(f"{'architecture':<18}{'est CPI':>10}{'sim CPI':>10}{'err %':>8}")
            for name, row in estimate_block["archs"].items():
                lines.append(
                    f"{name:<18}{row['estimated_cpi']:>10.4f}"
                    f"{row['simulated_cpi']:>10.4f}"
                    f"{100 * row['relative_error']:>8.2f}"
                )
        _write("\n".join(lines), args.output)
    return EXIT_OK if report.ok else EXIT_RUNTIME


def cmd_predict(args: argparse.Namespace) -> int:
    """Profile-free branch prediction: per-site probabilities and flow.

    Runs the heuristic predictor and Wu–Larus frequency propagation over
    a benchmark without tracing it.  ``--compare`` traces the benchmark
    once and grades the predictions against the measured taken rates;
    ``--json`` emits the full machine-readable report, including
    layout-opportunity hints for sites the melding legality analyzer
    blocks but the predictor still orients.
    """
    import json as _json

    from .staticcheck import (
        ProgramAnalyses,
        analyze_program,
        predict_program,
        propagate_program,
    )

    program = _workload(args)
    analyses = ProgramAnalyses()
    report = predict_program(program, analyses)
    frequencies = propagate_program(program, report=report, analyses=analyses)

    def site_freq(procedure: str, block) -> float:
        fmap = frequencies.get(procedure)
        return fmap.block_freq.get(block, 0.0) if fmap else 0.0

    # Rank sites by propagated frequency — the weight each prediction
    # carries in the synthetic profile the aligners consume.
    sites = sorted(
        report.sites,
        key=lambda s: (-site_freq(s.procedure, s.block), s.procedure, s.block),
    )

    # Layout-opportunity hints: sites the legality analyzer blocks from
    # melding (their arms' observation chains diverge, or worse) are
    # exactly where alignment is the only remaining lever — and a
    # skewed prediction says which arm to keep hot.
    legality = analyze_program(program)
    hints = []
    for blocked in legality.blocked():
        pred = report.site(blocked.procedure, blocked.site)
        if pred is None:
            continue
        hints.append({
            "procedure": blocked.procedure,
            "site": blocked.site,
            "blocked_reason": blocked.reason,
            "p_taken": pred.p_taken,
            "confidence": pred.confidence,
            "frequency": site_freq(blocked.procedure, blocked.site),
            "high_skew": pred.confidence >= 0.5,
            "hot_arm": "taken" if pred.predicts_taken else "fallthrough",
        })
    hints.sort(key=lambda h: -(h["frequency"] * h["confidence"]))

    compare_block = None
    if args.compare:
        if args.profile:
            profile = load_profile(args.profile)
        else:
            profile = profile_program(program, seed=args.seed)
        rows = []
        total_w = agree_w = 0.0
        for s in report.sites:
            proc = program.procedure(s.procedure)
            try:
                w_taken, w_fall = profile.cond_mix(proc, s.block)
            except (KeyError, ValueError):
                continue
            executed = w_taken + w_fall
            if not executed:
                continue
            measured = w_taken / executed
            agree = (s.p_taken >= 0.5) == (measured >= 0.5)
            total_w += executed
            if agree:
                agree_w += executed
            rows.append({
                "procedure": s.procedure,
                "block": s.block,
                "predicted": s.p_taken,
                "measured": measured,
                "weight": executed,
                "agree": agree,
            })
        rows.sort(key=lambda r: -r["weight"])
        compare_block = {
            "sites": len(rows),
            "weighted_agreement": agree_w / total_w if total_w else None,
            "rows": rows,
        }

    if args.json:
        payload = {
            "benchmark": args.benchmark,
            "scale": args.scale,
            "site_count": len(report.sites),
            "sites": [
                dict(s.to_dict(), frequency=site_freq(s.procedure, s.block))
                for s in sites
            ],
            "cyclic": {
                name: {str(b): cp for b, cp in fmap.cyclic.items()}
                for name, fmap in frequencies.items()
                if fmap.cyclic
            },
            "hints": hints,
        }
        if compare_block is not None:
            payload["compare"] = compare_block
        _write(_json.dumps(payload, indent=2), args.output)
        return EXIT_OK

    lines = [
        f"{args.benchmark}: {len(report.sites)} conditional site(s) "
        f"predicted, {len(frequencies)} procedure(s) propagated",
        "",
        f"{'procedure':<16}{'block':>6}{'p(taken)':>10}{'conf':>7}"
        f"{'freq':>12}  heuristics",
    ]
    for s in sites[: args.top]:
        lines.append(
            f"{s.procedure:<16}{str(s.block):>6}{s.p_taken:>10.3f}"
            f"{s.confidence:>7.2f}{site_freq(s.procedure, s.block):>12.1f}"
            f"  {'+'.join(s.heuristics)}"
        )
    if len(sites) > args.top:
        lines.append(f"... {len(sites) - args.top} more site(s); --top to widen")
    if hints:
        lines += ["", "layout opportunities at meld-blocked sites:"]
        for h in hints[: args.top]:
            skew = "high-skew" if h["high_skew"] else "weak"
            lines.append(
                f"  {h['procedure']}:{h['site']} blocked ({h['blocked_reason']}) "
                f"— keep {h['hot_arm']} arm hot "
                f"(p={h['p_taken']:.2f}, {skew}, freq {h['frequency']:.1f})"
            )
    if compare_block is not None:
        pct = compare_block["weighted_agreement"]
        lines += [
            "",
            f"vs measured profile: {compare_block['sites']} executed "
            f"site(s), weighted direction agreement "
            + ("n/a" if pct is None else f"{100 * pct:.1f}%"),
        ]
        worst = sorted(
            compare_block["rows"],
            key=lambda r: -abs(r["predicted"] - r["measured"]) * r["weight"],
        )[:5]
        for r in worst:
            verdict = "ok" if r["agree"] else "MISS"
            lines.append(
                f"  {r['procedure']}:{r['block']} predicted "
                f"{r['predicted']:.2f} vs measured {r['measured']:.2f} "
                f"(weight {r['weight']}, {verdict})"
            )
    _write("\n".join(lines), args.output)
    return EXIT_OK


def cmd_prove(args: argparse.Namespace) -> int:
    """Statically prove every aligned layout bisimilar to the original.

    Recovers a CFG from each layout's raw linked instruction stream (no
    source metadata, no execution) and emits a checkable bisimulation
    proof per layout; any rejection exits non-zero.
    """
    import json as _json

    from .oracle import alignment_layouts
    from .runner import FaultInjector
    from .staticcheck.binary import prove_layouts

    program = _workload(args)
    if args.profile:
        profile = load_profile(args.profile)
    else:
        profile = profile_program(program, seed=args.seed)

    layouts = alignment_layouts(program, profile, window=args.window)
    if args.inject:
        try:
            specs = tuple(parse_fault_spec(spec) for spec in args.inject)
        except ValueError as exc:
            raise UsageError(str(exc))
        injector = FaultInjector(FaultPlan(specs=specs, seed=args.seed))
        layouts = {
            label: injector.mutate_layout(args.benchmark, 1, label, layout, profile)
            for label, layout in layouts.items()
        }

    store = ArtifactStore(args.store) if args.store else None
    proofs = prove_layouts(
        program, layouts, store=store, benchmark=args.benchmark
    )
    ok = all(proof.bisimilar for proof in proofs.values())
    if args.json:
        payload = {
            "benchmark": args.benchmark,
            "bisimilar": ok,
            "proofs": {label: proof.to_dict() for label, proof in proofs.items()},
        }
        _write(_json.dumps(payload, indent=2), args.output)
    else:
        lines = [f"prove: {args.benchmark}"]
        width = max(len(label) for label in proofs) if proofs else 0
        for label, proof in proofs.items():
            if proof.bisimilar:
                sites = sum(len(p.correspondences) for p in proof.procedures)
                edges = sum(len(p.witnesses) for p in proof.procedures)
                detail = f"{sites} site pairs, {edges} edge witnesses"
                status = "PROVED"
            else:
                detail = "; ".join(proof.failures()[:2])
                status = "REJECT"
            lines.append(f"{status:<7} {label:<{width}}  {detail}")
        proved = sum(proof.bisimilar for proof in proofs.values())
        lines.append(f"{proved}/{len(proofs)} layouts proved bisimilar")
        if store is not None:
            lines.append(f"proof artifacts stored under {args.store}")
        _write("\n".join(lines), args.output)
    return EXIT_OK if ok else EXIT_RUNTIME


def cmd_meld(args: argparse.Namespace) -> int:
    """Analyze, apply and judge branch melding (the claim-18 workflow).

    Runs the static legality analyzer over each benchmark, applies every
    approved meld, and (on request) proves the melded program bisimilar
    to the original, replays both observable event streams, injects
    forced illegal melds that the prover and RL018+ must reject, and
    emits the alignment x melding interaction study.
    """
    import json as _json

    from .analysis import MELD_BENCHMARKS, render_meld_studies, run_meld_study
    from .oracle.meldcheck import verify_meld
    from .staticcheck import MeldContext, analyze_program, run_lint
    from .staticcheck.binary import prove_meld, prove_meld_layouts
    from .staticcheck.legality import REASON_CHAINS_DIVERGE
    from .oracle import alignment_layouts
    from .transforms import force_meld, meld_program

    names = [
        _require_benchmark(name)
        for name in (args.benchmarks or list(MELD_BENCHMARKS))
    ]
    ok = True
    lines: List[str] = []
    payload: List[dict] = []
    studies = []
    for name in names:
        program = generate_benchmark(name, args.scale)
        legality = analyze_program(program)
        melded, report = meld_program(program, legality=legality)
        entry: dict = {
            "benchmark": name,
            "legality": legality.to_dict(),
            "meld": report.to_dict(),
        }
        counts = legality.verdict_counts()
        lines.append(f"meld: {name}")
        lines.append(
            "  sites: "
            + ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        )
        for site in legality.sites:
            lines.append(
                f"    {site.verdict:<14} {site.procedure}:{site.site:<4} "
                f"shape={site.shape:<9} {site.reason or '-'}"
            )
        for applied in report.applied:
            lines.append(
                f"  applied {applied.action} at "
                f"{applied.procedure}:{applied.site} -> {applied.target} "
                f"(removed {len(applied.removed)} block(s))"
            )
        if not report.applied:
            lines.append("  no approved site; nothing melded")

        if args.prove and report.applied:
            proof = prove_meld(program, melded)
            oracle = verify_meld(program, melded, seed=args.seed, benchmark=name)
            profile = profile_program(melded, seed=args.seed)
            layout_proofs = prove_meld_layouts(
                program, alignment_layouts(melded, profile, window=args.window)
            )
            proved = (
                proof.bisimilar
                and oracle.passed
                and all(p.bisimilar for p in layout_proofs.values())
            )
            ok &= proved
            status = "PROVED" if proved else "REJECT"
            lines.append(
                f"  {status} identity={proof.bisimilar} "
                f"stream={'match' if oracle.passed else 'diverged'} "
                f"aligned={sum(p.bisimilar for p in layout_proofs.values())}"
                f"/{len(layout_proofs)}"
            )
            entry["prove"] = {
                "identity": proof.to_dict(),
                "oracle": oracle.to_dict(),
                "layouts": {
                    label: p.bisimilar for label, p in layout_proofs.items()
                },
            }

        if args.inject:
            meld_codes = {"RL018", "RL019", "RL020", "RL021"}
            probes = [
                site for site in legality.blocked()
                if site.reason == REASON_CHAINS_DIVERGE
            ][: args.inject]
            if len(probes) < args.inject:
                lines.append(
                    f"  only {len(probes)} chains-diverge site(s) available "
                    f"for {args.inject} requested probe(s)"
                )
            entry["probes"] = []
            for site in probes:
                forced, record = force_meld(program, site.procedure, site.site)
                proof = prove_meld(
                    program, forced, label=f"fault:{site.procedure}:{site.site}"
                )
                lint = run_lint(
                    forced,
                    subject=f"{name}:fault-meld",
                    meld=MeldContext(
                        original=program, melded=forced, records=(record,)
                    ),
                )
                flagged = sorted(
                    meld_codes.intersection(d.code for d in lint.errors)
                )
                caught = not proof.bisimilar and "RL018" in flagged
                ok &= caught
                lines.append(
                    f"  probe {site.procedure}:{site.site} "
                    f"{'caught' if caught else 'ESCAPED'}: "
                    f"prover={'reject' if not proof.bisimilar else 'accept'} "
                    f"lint={','.join(flagged) or '-'}"
                )
                entry["probes"].append(
                    {
                        "procedure": site.procedure,
                        "site": site.site,
                        "prover_rejected": not proof.bisimilar,
                        "flagged": flagged,
                        "caught": caught,
                    }
                )

        if args.study:
            study = run_meld_study(
                name, scale=args.scale, seed=args.seed, window=args.window,
                program=program, melded=melded, meld_report=report,
            )
            studies.append(study)
            entry["study"] = study.to_dict()
        payload.append(entry)

    if args.json:
        _write(
            _json.dumps(
                {"benchmarks": payload, "ok": ok}, indent=2, default=str
            ),
            args.output,
        )
    elif args.study:
        _write(render_meld_studies(studies), args.output)
    else:
        _write("\n".join(lines), args.output)
    return EXIT_OK if ok else EXIT_RUNTIME


def _doctor_lint(args: argparse.Namespace) -> int:
    """Lint every registered workload (or one), per-pass PASS/FAIL.

    Each workload is also melded (where the legality analyzer approves)
    so the RL018–RL021 meld-audit passes run with a real transcript and
    show up in the aggregate table.
    """
    from .staticcheck import MeldContext, run_lint
    from .transforms import meld_program

    names = [args.benchmark] if args.benchmark else list(SUITE)
    failures: dict = {}
    descriptions: dict = {}
    clean = True
    for name in names:
        program = generate_benchmark(name, args.scale)
        profile = profile_program(program, seed=args.seed)
        layouts, _notes = _lint_layouts(program, profile, args.arch, args.window)
        melded, meld_report = meld_program(program)
        meld = MeldContext(
            original=program, melded=melded,
            records=tuple(meld_report.applied),
        )
        report = run_lint(
            program, profile, layouts, subject=name, meld=meld,
            static=_static_context(program),
        )
        clean &= report.ok
        for outcome in report.outcomes:
            descriptions[outcome.pass_id] = outcome.description
            if not outcome.passed:
                failures.setdefault(outcome.pass_id, []).append(
                    f"{name}: " + "; ".join(
                        d.render() for d in outcome.findings[:2]
                    )
                )
    results = [
        InvariantResult(
            f"lint:{pass_id}",
            f"{description} ({len(names)} workload(s))",
            pass_id not in failures,
            failures.get(pass_id, []),
        )
        for pass_id, description in descriptions.items()
    ]
    _write(render_invariant_report(results), args.output)
    return EXIT_OK if clean else EXIT_RUNTIME


def _doctor_remote(args: argparse.Namespace) -> int:
    """Probe a live coordinator: protocol, schema, fingerprint drift."""
    from .fabric import PROTOCOL_VERSION, TransportError, probe_coordinator
    from .fabric.scheduler import SCHEMA_VERSION, load_queue_dir

    lines = [f"remote coordinator {args.remote}"]
    try:
        probe = probe_coordinator(args.remote, timeout=5.0)
    except ValueError as exc:
        raise UsageError(str(exc))
    except TransportError as exc:
        lines.append(
            f"FAIL unreachable: {exc.reason} — {exc.detail or 'no detail'}; "
            f"is a `repro sweep --listen` coordinator running there?"
        )
        _write("\n".join(lines), args.output)
        return EXIT_RUNTIME
    problems = 0
    if probe["protocol"] != PROTOCOL_VERSION:
        problems += 1
        lines.append(
            f"FAIL protocol drift: coordinator speaks wire protocol "
            f"{probe['protocol']}, this client speaks {PROTOCOL_VERSION} — "
            f"workers from this host would be rejected at handshake"
        )
    else:
        lines.append(f"PASS protocol: v{probe['protocol']}")
    if probe["schema"] != SCHEMA_VERSION:
        problems += 1
        lines.append(
            f"FAIL queue-schema drift: coordinator persists schema "
            f"{probe['schema']}, this host expects {SCHEMA_VERSION}"
        )
    else:
        lines.append(f"PASS queue schema: v{probe['schema']}")
    lines.append(
        f"coordinator sweep: {probe['units']} unit(s), "
        f"fingerprint {probe['fingerprint']}"
    )
    if args.fabric:
        header, _records, _corrupt = load_queue_dir(args.fabric)
        local = header.get("fingerprint")
        if local != probe["fingerprint"]:
            problems += 1
            lines.append(
                f"FAIL fingerprint drift: local queue {args.fabric} is sweep "
                f"{local}, the coordinator serves {probe['fingerprint']} — "
                f"these are different sweeps; results must not be merged"
            )
        else:
            lines.append(f"PASS fingerprint matches local queue {args.fabric}")
    _write("\n".join(lines), args.output)
    return EXIT_OK if not problems else EXIT_RUNTIME


def cmd_worker(args: argparse.Namespace) -> int:
    """Join a coordinator as a remote fabric worker until drained."""
    from .fabric import FabricError, RemoteWorker, WorkerConfig

    if args.max_units is not None and args.max_units < 1:
        raise UsageError("--max-units must be >= 1")
    if args.name:
        name = args.name
    else:
        import os
        import socket as _socket

        name = f"{_socket.gethostname()}-{os.getpid()}"
    try:
        config = WorkerConfig(
            connect=args.connect,
            name=name,
            timeout=args.timeout,
            store_dir=args.store,
            max_units=args.max_units,
            seed=args.seed,
        )
        worker = RemoteWorker(config)
    except ValueError as exc:
        raise UsageError(str(exc))
    try:
        summary = worker.run()
    except FabricError as exc:
        print(f"worker rejected: {exc}", file=sys.stderr)
        return EXIT_RUNTIME
    lines = [
        f"worker {summary['worker']}: {summary['reason']}",
        f"completed: {len(summary['completed'])} unit(s)",  # type: ignore[arg-type]
    ]
    failed = summary["failed"]
    if failed:
        lines.append(f"failed: {len(failed)} unit(s)")  # type: ignore[arg-type]
    if summary["reconnects"]:
        lines.append(f"reconnected {summary['reconnects']} time(s)")
    if args.store:
        lines.append(f"partial results manifested in {args.store}")
    _write("\n".join(lines), args.output)
    return EXIT_OK if summary["reason"] in ("drained", "max-units") else EXIT_RUNTIME


def cmd_doctor(args: argparse.Namespace) -> int:
    """Run the invariant-validation layer standalone, PASS/FAIL per check."""
    if args.repair and not (args.store or args.fabric):
        raise UsageError("--repair needs --store DIR or --fabric DIR")
    if args.store and args.fabric:
        raise UsageError("pick one of --store and --fabric")
    if args.remote:
        return _doctor_remote(args)
    if args.fabric:
        return _doctor_fabric(args)
    if args.store:
        return _doctor_store(args)
    if args.lint:
        return _doctor_lint(args)
    if args.benchmark is None:
        raise UsageError(
            "doctor needs a benchmark (or --store DIR / --fabric DIR)"
        )
    program = _workload(args)
    if args.profile:
        profile = load_profile(args.profile)
    else:
        profile = profile_program(program, seed=args.seed)
    results = [
        check_cfg(program),
        check_profile_consistency(program, profile),
        check_flow_conservation(program, profile),
    ]
    aligners = [
        ("greedy", GreedyAligner()),
        (f"try{args.window}-{args.arch}",
         TryNAligner.for_architecture(args.arch, window=args.window)),
    ]
    for label, aligner in aligners:
        try:
            layout = aligner.align(program, profile)
        except LayoutError as exc:
            results.append(InvariantResult(
                f"layout-permutation:{label}",
                "layout is a flow-preserving permutation",
                False, [str(exc)],
            ))
            continue
        permutation = check_layout_permutation(layout)
        permutation.name += f":{label}"
        results.append(permutation)
        coverage = check_address_coverage(link(layout))
        coverage.name += f":{label}"
        results.append(coverage)
    _write(render_invariant_report(results), args.output)
    return EXIT_OK if all(r.passed for r in results) else EXIT_RUNTIME


def cmd_breakdown(args: argparse.Namespace) -> int:
    program = _workload(args)
    archs = tuple(a.strip() for a in args.archs.split(",")) if args.archs else ALL_ARCHS
    rows = penalty_breakdown(program, archs=archs, seed=args.seed)
    _write(render_breakdown(rows), args.output)
    return 0


def cmd_sensitivity(args: argparse.Namespace) -> int:
    program = _workload(args)
    if args.kind == "penalty":
        raw = args.points or "2,4,8,16"
        points = mispredict_penalty_sweep(
            program, arch=args.arch,
            penalties=[float(p) for p in raw.split(",")],
            seed=args.seed,
        )
        header = "Mispredict cycles"
    else:
        raw = args.points or "1,2,4,8"
        points = issue_width_sweep(
            program, widths=[int(p) for p in raw.split(",")], seed=args.seed
        )
        header = "Issue width"
    text = format_table(
        [header, "Original", "Aligned", "Gain %"],
        [[f"{p.parameter:g}", f"{p.original:,.3f}", f"{p.aligned:,.3f}",
          f"{p.gain_percent:.1f}"] for p in points],
    )
    _write(text, args.output)
    return 0


def _fabric_fault_plan(args: argparse.Namespace) -> Optional[FaultPlan]:
    """Parse ``repro sweep --inject``: bare fabric kinds or full specs."""
    from .runner import FaultSpec

    specs = []
    for chunk in args.inject:
        for item in chunk.split(","):
            item = item.strip()
            if not item:
                continue
            try:
                if ":" in item:
                    specs.append(parse_fault_spec(item))
                else:
                    specs.append(
                        FaultSpec(benchmark="*", stage="fabric", kind=item)
                    )
            except ValueError as exc:
                raise UsageError(str(exc))
    if not specs:
        return None
    return FaultPlan(specs=tuple(specs), seed=args.seeds_list[0])


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run a benchmark sweep through the fault-tolerant fabric."""
    from .fabric import FabricConfig, run_fabric, write_report
    from .runner.faults import NETWORK_FAULT_KINDS
    from .runner.runner import UnitTask

    names = _benchmark_list(args.benchmarks) or list(SUITE)
    try:
        seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    except ValueError:
        raise UsageError(f"bad --seeds value {args.seeds!r}")
    if not seeds:
        raise UsageError("--seeds needs at least one seed")
    args.seeds_list = seeds
    if args.archs:
        archs = tuple(a.strip() for a in args.archs.split(",") if a.strip())
        unknown = [a for a in archs if a not in ALL_ARCHS]
        if unknown:
            raise UsageError(f"unknown architectures: {', '.join(unknown)}")
    else:
        archs = ALL_ARCHS
    if args.retries < 1:
        raise UsageError("--retries must be >= 1")
    if args.resume and not args.queue:
        raise UsageError("--resume requires --queue DIR")
    if args.remote_workers < 0:
        raise UsageError("--remote-workers must be >= 0")
    if args.remote_workers and not args.listen:
        raise UsageError("--remote-workers needs --listen [HOST:]PORT")
    if args.report is None and args.queue is not None:
        from pathlib import Path as _Path

        args.report = str(_Path(args.queue) / "report.json")

    faults = _fabric_fault_plan(args)
    if faults is not None and not args.listen:
        network = sorted(
            {s.kind for s in faults.specs if s.kind in NETWORK_FAULT_KINDS}
        )
        if network:
            raise UsageError(
                f"network fault(s) {', '.join(network)} attack the socket "
                f"tier; add --listen [HOST:]PORT"
            )

    algorithms = _algorithm_list(args.algorithms)
    tasks = [
        UnitTask(
            kind="experiment", benchmark=name, scale=args.scale, seed=seed,
            window=args.window, archs=archs,
            algorithms=tuple(algorithms) if algorithms is not None else None,
        )
        for seed in seeds
        for name in names
    ]
    try:
        config = FabricConfig(
            workers=args.workers,
            lease=args.lease,
            heartbeat=args.heartbeat,
            poison_threshold=args.poison_threshold,
            retry=RetryPolicy(max_attempts=args.retries),
            queue_dir=args.queue,
            resume=args.resume,
            faults=faults,
            drain_timeout=args.drain_timeout,
            seed=seeds[0],
            listen=args.listen,
        )
    except ValueError as exc:
        raise UsageError(str(exc))

    loopback: list = []
    on_listening = None
    if args.listen:
        from .fabric import launch_workers

        def on_listening(address: tuple) -> None:
            print(f"listening on {address[0]}:{address[1]}", file=sys.stderr)
            if args.remote_workers:
                loopback.extend(
                    launch_workers(address, args.remote_workers, seed=seeds[0])
                )

    result = run_fabric(tasks, config, on_listening=on_listening)
    for thread in loopback:
        thread.join(timeout=30.0)

    scheduler = result.scheduler
    rows = []
    for unit_id in scheduler.order:
        record = scheduler.record(unit_id)
        workers = sorted(
            {str(e["worker"]) for e in record.lease_history if "worker" in e}
        )
        rows.append([
            unit_id,
            record.state,
            str(record.attempts),
            ",".join(workers) or "-",
        ])
    lines = [format_table(["Unit", "State", "Attempts", "Workers"], rows)]
    counts = result.counts()
    lines.append(
        "counts: " + ", ".join(f"{state}={counts[state]}"
                               for state in ("done", "failed", "quarantined",
                                             "pending", "leased")
                               if counts[state])
    )
    if result.resumed:
        lines.append(f"resumed: {len(result.resumed)} unit(s) restored from "
                     f"the queue without re-running")
    if result.remote is not None:
        fired = result.remote.get("faults_fired") or {}
        rejections = result.remote.get("rejections") or {}
        line = (
            f"socket tier: {len(result.remote.get('workers', []))} remote "
            f"worker(s), {len(result.remote.get('remote_completed', []))} "
            f"unit(s) completed remotely"
        )
        if fired:
            line += "; network faults fired: " + ", ".join(
                f"{kind}x{times}" for kind, times in sorted(fired.items())
            )
        if rejections:
            line += "; stale messages rejected: " + ", ".join(
                f"{reason}x{times}"
                for reason, times in sorted(rejections.items())
            )
        lines.append(line)
    for record in result.quarantined:
        failure = record.failure or {}
        lines.append(
            f"quarantined (poison): {record.unit_id} — "
            f"{failure.get('message', 'crashed distinct workers')}; "
            f"{len(record.tracebacks)} traceback(s) recorded"
        )
    for failure_rec in result.failures:
        lines.append(f"failed: {failure_rec.benchmark} at {failure_rec.stage} "
                     f"({failure_rec.kind}): {failure_rec.message}")
    if result.drained:
        lines.append(
            f"drained: {result.drain_reason} — leases revoked and queue "
            f"checkpointed; rerun with --resume to finish"
        )
    if args.report:
        path = write_report(
            scheduler, args.report,
            drained=result.drained, drain_reason=result.drain_reason,
        )
        lines.append(f"report written to {path}")
    _write("\n".join(lines), args.output)
    if result.partial:
        return EXIT_PARTIAL
    return EXIT_OK


def _doctor_fabric(args: argparse.Namespace) -> int:
    """Inspect (and with ``--repair`` fix) a fabric queue directory."""
    from .fabric import (
        LEASED,
        QUARANTINED,
        load_queue_dir,
        repair_queue_dir,
    )

    if args.repair:
        summary = repair_queue_dir(args.fabric)
        lines = []
        if summary["revoked"]:
            lines.append(
                f"{len(summary['revoked'])} stuck lease(s) released back to "
                f"pending: " + ", ".join(summary["revoked"])
            )
        if summary["quarantined"]:
            lines.append(
                f"{len(summary['quarantined'])} corrupt record file(s) "
                f"quarantined: " + ", ".join(summary["quarantined"])
            )
        if not lines:
            lines.append("queue is clean — nothing to repair")
        _write("\n".join(lines), args.output)
        return EXIT_OK

    header, records, corrupt = load_queue_dir(args.fabric)
    lines = [f"fabric queue {args.fabric} (sweep {header.get('fingerprint')})"]
    counts: dict = {}
    for record in records.values():
        counts[record.state] = counts.get(record.state, 0) + 1
    lines.append(
        "counts: " + (", ".join(f"{state}={n}"
                                for state, n in sorted(counts.items())) or "empty")
    )
    problems = 0
    for record in sorted(records.values(), key=lambda r: r.unit_id):
        if record.state == LEASED:
            problems += 1
            holder = record.lease.worker if record.lease is not None else "?"
            lines.append(
                f"stuck lease: {record.unit_id} held by {holder} "
                f"(attempt {record.attempts}) — no live supervisor can "
                f"renew it; --repair releases it"
            )
        elif record.state == QUARANTINED:
            failure = record.failure or {}
            lines.append(
                f"quarantined: {record.unit_id} — "
                f"{failure.get('message', 'poison unit')}"
            )
    for path in corrupt:
        problems += 1
        lines.append(f"corrupt record: {path.name} — undecodable; --repair "
                     f"quarantines it")
    if not problems:
        lines.append("no stuck leases or corrupt records")
    _write("\n".join(lines), args.output)
    return EXIT_OK if not problems else EXIT_RUNTIME


def cmd_tournament(args: argparse.Namespace) -> int:
    """Run the alignment arena: every registered algorithm head to head."""
    import json as _json

    from .analysis import render_tournament, run_tournament

    names = _benchmark_list(args.benchmarks)
    algorithms = _algorithm_list(args.algorithms)
    if args.archs:
        archs = tuple(a.strip() for a in args.archs.split(",") if a.strip())
        unknown = [a for a in archs if a not in ALL_ARCHS]
        if unknown:
            raise UsageError(f"unknown architectures: {', '.join(unknown)}")
    else:
        archs = ALL_ARCHS
    if args.profile_source == "static":
        # The static arena is a *study*: the same benchmarks run twice,
        # aligned on the measured profile and on the profile-free
        # StaticProfile, and the report scores how much of the measured
        # win the predictions recover (results/static_profile.md).
        from .analysis import STATIC_STUDY_ARCHS, render_static_study, run_static_study

        if args.arena:
            raise UsageError(
                "--arena sharding is not supported with --profile-source "
                "static (the study already runs two full tournaments)"
            )
        if algorithms is not None and len(algorithms) != 1:
            raise UsageError(
                "--profile-source static studies exactly one aligner; "
                "pass a single --algorithms entry (default try15)"
            )
        study = run_static_study(
            benchmarks=names, scale=args.scale, seed=args.seed,
            window=args.window,
            archs=archs if args.archs else STATIC_STUDY_ARCHS,
            algorithm=algorithms[0] if algorithms else "try15",
        )
        if args.json:
            _write(_json.dumps(study.to_dict(), indent=2), args.output)
        else:
            _write(render_static_study(study), args.output)
        return EXIT_OK
    runner = None
    if args.arena:
        from .fabric import FabricConfig

        if args.workers < 1:
            raise UsageError("--workers must be >= 1")
        runner = FabricConfig(
            workers=args.workers,
            retry=RetryPolicy(max_attempts=args.retries),
            queue_dir=args.queue,
            seed=args.seed,
        )
    try:
        tournament = run_tournament(
            benchmarks=names, scale=args.scale, seed=args.seed,
            window=args.window, archs=archs, algorithms=algorithms,
            runner=runner, arena=args.arena,
        )
    except ValueError as exc:
        raise UsageError(str(exc))
    if args.json:
        _write(_json.dumps(tournament.to_dict(), indent=2), args.output)
    else:
        _write(render_tournament(tournament), args.output)
    return EXIT_OK


def cmd_quality(args: argparse.Namespace) -> int:
    from .core import aligner_names, get_spec

    program = _workload(args)
    profile = profile_program(program, seed=args.seed)
    qualities = {"orig": layout_quality(link_identity(program), profile)}
    competitors = [
        name for name in aligner_names() if not get_spec(name).identity
    ] + ["cost"]
    for algorithm in competitors:
        aligner = _make_aligner(algorithm, args.arch, args.window)
        linked = link(aligner.align(program, profile))
        qualities[algorithm] = layout_quality(linked, profile)
    _write(compare_layout_quality(qualities), args.output)
    return 0


def cmd_hotspots(args: argparse.Namespace) -> int:
    program = _workload(args)
    from .profiling import profile_program as _pp
    profile = _pp(program, seed=args.seed)
    model = make_model(args.arch)
    aligner = TryNAligner.for_architecture(args.arch, window=args.window)
    procs = procedure_hotspots(program, model, aligner, profile, seed=args.seed)
    branches = branch_hotspots(program, model, aligner, profile, seed=args.seed,
                               top=args.top)
    _write(render_hotspots(procs, branches), args.output)
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    results = verify_claims(scale=args.scale, seed=args.seed, window=args.window)
    _write(render_claims(results), args.output)
    failed = [r for r in results if not r.passed]
    if failed and args.strict:
        print(
            f"strict mode: {len(failed)} claim(s) failed", file=sys.stderr
        )
        return EXIT_RUNTIME
    return EXIT_OK


def cmd_bench(args: argparse.Namespace) -> int:
    """Time the replay engine against the legacy engine (BENCH_PR4.json).

    ``--tournament`` times the full-registry tournament instead — shared
    trace vs per-algorithm re-execution — and writes ``BENCH_PR9.json``.
    """
    from .analysis.bench import (
        BENCH_BENCHMARKS,
        QUICK_BENCHMARKS,
        bench_pipeline,
        bench_tournament,
        render_bench,
        write_bench_json,
    )

    names = _benchmark_list(args.benchmarks)
    if names is None:
        names = list(QUICK_BENCHMARKS if args.quick else BENCH_BENCHMARKS)
    repeats = args.repeats if args.repeats is not None else (1 if args.quick else 3)
    if repeats < 1:
        raise UsageError("--repeats must be >= 1")
    measure = bench_tournament if args.tournament else bench_pipeline
    report = measure(
        benchmarks=names,
        scale=args.scale,
        seed=args.seed,
        window=args.window,
        repeats=repeats,
        trace_cache=args.trace_cache,
    )
    json_output = args.json_output
    if json_output is None:
        json_output = "BENCH_PR9.json" if args.tournament else "BENCH_PR4.json"
    path = write_bench_json(report, json_output)
    print(render_bench(report))
    print(f"wrote {path}")
    return EXIT_OK if report["replay_not_slower"] else EXIT_RUNTIME


def cmd_dot(args: argparse.Namespace) -> int:
    program = _workload(args)
    if args.procedure not in program:
        raise UsageError(
            f"unknown procedure {args.procedure!r}; "
            f"available: {', '.join(program.order)}"
        )
    weights = None
    if args.weights:
        profile = profile_program(program, seed=args.seed)
        weights = profile.proc_edges(args.procedure)
    text = procedure_to_dot(program.procedure(args.procedure), edge_weights=weights)
    _write(text, args.output)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Branch alignment reproduction (Calder & Grunwald, ASPLOS 1994)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, window=False):
        p.add_argument("--scale", type=float, default=0.25,
                       help="workload scale multiplier (default 0.25)")
        p.add_argument("--seed", type=int, default=0, help="behaviour seed")
        p.add_argument("-o", "--output", help="write result to a file")
        if window:
            p.add_argument("--window", type=int, default=15,
                           help="TryN window size (default 15)")

    sub.add_parser("list", help="list the benchmark suite").set_defaults(func=cmd_list)

    p = sub.add_parser("profile", help="trace a benchmark, save its edge profile")
    p.add_argument("benchmark")
    p.add_argument("output", help="profile JSON path")
    common(p)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("align", help="align a benchmark and compare CPI")
    p.add_argument("benchmark")
    p.add_argument("--algorithm", choices=_algorithm_choices(), default="tryn",
                   help="a registered aligner (see `repro tournament`) or "
                        "the legacy model-parameterised cost/tryn spellings")
    p.add_argument("--arch", choices=("fallthrough", "btfnt", "likely", "pht", "btb"),
                   default="btb", help="cost-model architecture")
    p.add_argument("--profile", help="reuse a saved profile instead of tracing")
    p.add_argument("--save-layout", help="write the alignment map (JSON) here")
    p.add_argument("--diff", action="store_true",
                   help="print the block-level transformation report")
    common(p, window=True)
    p.set_defaults(func=cmd_align)

    p = sub.add_parser("breakdown", help="misfetch/mispredict decomposition")
    p.add_argument("benchmark")
    p.add_argument("--archs", help="comma-separated architecture subset")
    common(p)
    p.set_defaults(func=cmd_breakdown)

    p = sub.add_parser(
        "lint",
        help="static verifier passes over a benchmark's CFG, profile and "
             "layouts (RLxxx diagnostics; non-zero exit on errors)",
    )
    p.add_argument("benchmark")
    p.add_argument("--arch", choices=("fallthrough", "btfnt", "likely", "pht", "btb"),
                   default="btb", help="cost-model architecture for the aligned layout")
    p.add_argument("--profile", help="lint a saved profile instead of tracing")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable JSON report")
    p.add_argument("--estimate", action="store_true",
                   help="append the static cost estimate cross-validated "
                        "against the simulator")
    p.add_argument("--inject", action="append", default=[],
                   metavar="BENCH:STAGE:KIND[:TIMES]",
                   help="inject a deterministic fault before linting "
                        "(e.g. eqntott:lint:break-cfg)")
    common(p, window=True)
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "predict",
        help="profile-free branch prediction: heuristic per-site "
             "probabilities fused Dempster–Shafer style, Wu–Larus "
             "frequency propagation, and layout-opportunity hints at "
             "meld-blocked sites",
    )
    p.add_argument("benchmark")
    p.add_argument("--compare", action="store_true",
                   help="trace the benchmark once and grade the "
                        "predictions against the measured taken rates")
    p.add_argument("--profile", help="with --compare, grade against a "
                                     "saved profile instead of tracing")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable report (sites, "
                        "frequencies, hints, comparison)")
    p.add_argument("--top", type=int, default=20,
                   help="sites to show in the text report (default 20)")
    common(p)
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser(
        "prove",
        help="statically prove every aligned layout's binary bisimilar to "
             "the original (translation validation; non-zero exit on any "
             "rejection)",
    )
    p.add_argument("benchmark")
    p.add_argument("--profile", help="reuse a saved profile instead of tracing")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable proof artifacts as JSON")
    p.add_argument("--store", metavar="DIR",
                   help="persist proof artifacts to a crash-safe artifact "
                        "store under proof/<benchmark>/<layout>")
    p.add_argument("--inject", action="append", default=[],
                   metavar="BENCH:STAGE:KIND[:TIMES]",
                   help="inject a deterministic layout fault before proving "
                        "(e.g. eqntott:layout:flip-sense)")
    common(p, window=True)
    p.set_defaults(func=cmd_prove)

    p = sub.add_parser(
        "meld",
        help="statically classify every conditional branch as meldable / "
             "if-convertible / blocked, apply the approved removals, and "
             "judge them (bisimulation prover + event-stream oracle)",
    )
    p.add_argument("benchmarks", nargs="*",
                   help="benchmarks to meld (default: the claim-18 pair)")
    p.add_argument("--prove", action="store_true",
                   help="prove each melded program (identity + aligned "
                        "layouts) bisimilar and replay both event streams; "
                        "non-zero exit on any rejection")
    p.add_argument("--inject", type=int, default=0, metavar="N",
                   help="force N illegal melds per benchmark; each must be "
                        "rejected by the prover and flagged RL018+ or the "
                        "command exits non-zero")
    p.add_argument("--study", action="store_true",
                   help="run the alignment x melding interaction study and "
                        "render the results table")
    p.add_argument("--json", action="store_true",
                   help="emit everything as machine-readable JSON")
    common(p, window=True)
    p.set_defaults(func=cmd_meld)

    p = sub.add_parser("sensitivity", help="machine-sensitivity sweeps")
    p.add_argument("benchmark")
    p.add_argument("kind", choices=("penalty", "width"))
    p.add_argument("--points", default=None,
                   help="comma-separated sweep points")
    p.add_argument("--arch", default="likely",
                   help="architecture for the penalty sweep")
    common(p)
    p.set_defaults(func=cmd_sensitivity)

    p = sub.add_parser(
        "sweep",
        help="run a benchmark sweep through the fault-tolerant fabric: "
             "durable lease queue, supervised heartbeat workers, "
             "poison-unit quarantine, consolidated manifest report",
    )
    p.add_argument("--benchmarks", help="comma-separated subset (default: all)")
    p.add_argument("--seeds", default="0",
                   help="comma-separated behaviour seeds (default 0); the "
                        "sweep is benchmarks x seeds units")
    p.add_argument("--archs", default=None,
                   help="comma-separated architecture subset (default: all)")
    p.add_argument("--algorithms", default=None,
                   help="comma-separated registered aligners each unit "
                        "competes (default: the whole registry)")
    g = p.add_argument_group("fabric")
    g.add_argument("--workers", type=int, default=2, metavar="N",
                   help="supervised worker processes (default 2)")
    g.add_argument("--lease", type=float, default=30.0, metavar="SECONDS",
                   help="lease duration; a unit not completed or "
                        "heartbeat-renewed within this window is revoked "
                        "and re-leased (default 30)")
    g.add_argument("--heartbeat", type=float, default=None, metavar="SECONDS",
                   help="worker heartbeat interval (default: lease/4, "
                        "capped at 1s)")
    g.add_argument("--retries", type=int, default=3, metavar="N",
                   help="max attempts per unit (default 3)")
    g.add_argument("--poison-threshold", type=int, default=2, metavar="K",
                   help="distinct workers a unit may crash before it is "
                        "quarantined as poison (default 2)")
    g.add_argument("--queue", metavar="DIR",
                   help="durable queue directory; the sweep survives "
                        "SIGKILL and --resume picks it back up")
    g.add_argument("--resume", action="store_true",
                   help="resume the queue directory: done units keep "
                        "their verified results, dead leases are revoked, "
                        "failed units re-run, poison stays quarantined")
    g.add_argument("--inject", action="append", default=[],
                   metavar="KIND|BENCH:fabric:KIND[:TIMES]",
                   help="inject fabric faults (comma-separable): bare "
                        "kinds (kill-worker, stall-worker, expire-lease, "
                        "corrupt-queue, poison-unit) apply to every "
                        "benchmark; full specs pin one")
    g.add_argument("--report", metavar="PATH",
                   help="write the consolidated SHA-256-manifested report "
                        "here (default: QUEUE/report.json with --queue)")
    g.add_argument("--drain-timeout", type=float, default=10.0,
                   metavar="SECONDS",
                   help="grace period for in-flight units on SIGINT/"
                        "SIGTERM before their leases are revoked")
    s = p.add_argument_group("socket tier")
    s.add_argument("--listen", metavar="[HOST:]PORT",
                   help="serve the lease protocol over TCP so `repro "
                        "worker` processes (any host) can join the sweep; "
                        "port 0 picks an ephemeral port (printed to "
                        "stderr); --workers 0 runs coordinator-only")
    s.add_argument("--remote-workers", type=int, default=0, metavar="N",
                   help="also start N loopback socket workers in-process "
                        "(demo/CI mode; requires --listen)")
    common(p, window=True)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "worker",
        help="join a `repro sweep --listen` coordinator as a remote "
             "fabric worker: lease units over TCP, heartbeat, stream "
             "results back, reconnect with jittered backoff",
    )
    p.add_argument("--connect", required=True, metavar="[HOST:]PORT",
                   help="coordinator address")
    p.add_argument("--name", default=None, metavar="NAME",
                   help="worker name (default: HOSTNAME-PID); reconnects "
                        "under the same name get a fresh session epoch")
    p.add_argument("--store", metavar="DIR",
                   help="also persist this host's results to a local "
                        "SHA-256-manifested partial artifact store")
    p.add_argument("--timeout", type=float, default=5.0, metavar="SECONDS",
                   help="per-RPC timeout before reconnecting (default 5)")
    p.add_argument("--max-units", type=int, default=None, metavar="N",
                   help="leave after completing N units")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for the reconnect backoff jitter")
    p.add_argument("-o", "--output", help="write the summary to a file")
    p.set_defaults(func=cmd_worker)

    def runner_flags(p):
        g = p.add_argument_group("resilient runner")
        g.add_argument("--checkpoint", metavar="PATH",
                       help="journal completed benchmarks to a JSONL checkpoint")
        g.add_argument("--resume", action="store_true",
                       help="resume from the checkpoint, re-running only "
                            "unfinished/failed benchmarks")
        g.add_argument("--isolate", action="store_true",
                       help="run each benchmark in a worker subprocess "
                            "(crashes become per-benchmark failures)")
        g.add_argument("--timeout", type=float, metavar="SECONDS",
                       help="per-benchmark wall-clock budget (implies --isolate)")
        g.add_argument("--retries", type=int, default=3, metavar="N",
                       help="max attempts for retryable failures (default 3)")
        g.add_argument("--workers", type=int, default=1, metavar="N",
                       help="parallel worker processes (implies --isolate)")
        g.add_argument("--inject", action="append", default=[],
                       metavar="BENCH:STAGE:KIND[:TIMES]",
                       help="inject a deterministic fault (fault-injection "
                            "harness; e.g. gcc:align:crash or "
                            "eqntott:layout:mutate-layout)")
        g.add_argument("--oracle", action="store_true",
                       help="differentially verify every aligned layout "
                            "replays the original trace (divergences fail "
                            "the benchmark, never retried)")
        g.add_argument("--prove", action="store_true",
                       help="statically prove every aligned layout's binary "
                            "bisimilar to the original (translation "
                            "validation; rejections fail the benchmark, "
                            "never retried)")
        g.add_argument("--lint", action="store_true",
                       help="run the static verifier passes over each "
                            "benchmark's CFG and profile before alignment "
                            "(error findings fail the benchmark, never "
                            "retried)")
        g.add_argument("--meld", action="store_true",
                       help="apply every analyzer-approved branch meld to "
                            "the workload before tracing (with --lint the "
                            "RL018-RL021 audit passes check the transcript)")
        g.add_argument("--store", metavar="DIR",
                       help="persist results to a crash-safe checksummed "
                            "artifact store (corrupt artifacts are "
                            "quarantined and re-run on --resume)")
        g.add_argument("--engine", choices=("replay", "execute"),
                       default="replay",
                       help="simulation engine: 'replay' captures each "
                            "workload's decision trace once and replays it "
                            "through every layout (default); 'execute' is "
                            "the legacy one-execution-per-layout path")
        g.add_argument("--replay-check", action="store_true",
                       help="differentially check every replay against a "
                            "fresh execution (slow; reports must be "
                            "bit-identical)")
        g.add_argument("--trace-cache", metavar="DIR",
                       help="cache captured decision traces on disk, keyed "
                            "by (workload, scale, seed) fingerprint; "
                            "corrupt or stale entries are quarantined and "
                            "re-captured transparently")

    for name, func, window in (
        ("table2", cmd_table2, False),
        ("table3", cmd_table3, True),
        ("table4", cmd_table4, True),
        ("figure4", cmd_figure4, True),
    ):
        p = sub.add_parser(name, help=f"regenerate the paper's {name}")
        p.add_argument("--benchmarks", help="comma-separated subset")
        p.add_argument("--csv", action="store_true",
                       help="emit machine-readable CSV instead of a table")
        common(p, window=window)
        if name != "table2":
            runner_flags(p)
        p.set_defaults(func=func)

    p = sub.add_parser(
        "doctor",
        help="validate pipeline invariants for a benchmark (PASS/FAIL "
             "report), or audit/repair an artifact store",
    )
    p.add_argument("benchmark", nargs="?",
                   help="benchmark to validate (omit with --store)")
    p.add_argument("--profile", help="validate a saved profile instead of tracing")
    p.add_argument("--store", metavar="DIR",
                   help="audit an artifact store's checksums instead")
    p.add_argument("--fabric", metavar="DIR",
                   help="inspect a fabric queue directory: stuck leases, "
                        "quarantined poison units, corrupt records")
    p.add_argument("--remote", metavar="[HOST:]PORT",
                   help="probe a live sweep coordinator: ping round-trip, "
                        "wire-protocol and queue-schema versions, sweep "
                        "fingerprint (with --fabric DIR: drift vs the "
                        "local queue)")
    p.add_argument("--repair", action="store_true",
                   help="with --store: quarantine corrupt artifacts; with "
                        "--fabric: release stuck leases back to pending "
                        "and quarantine corrupt queue records")
    p.add_argument("--arch", choices=("fallthrough", "btfnt", "likely", "pht", "btb"),
                   default="btb", help="cost-model architecture for the aligned checks")
    p.add_argument("--lint", action="store_true",
                   help="run the static verifier passes over every "
                        "registered workload (or just BENCHMARK), "
                        "PASS/FAIL per pass")
    common(p, window=True)
    p.set_defaults(func=cmd_doctor)

    p = sub.add_parser(
        "tournament",
        help="run the alignment arena: every registered algorithm x "
             "architecture x benchmark off one shared decision trace, "
             "scored as pairwise win matrices (branch cost + fall-through)",
    )
    p.add_argument("--benchmarks", help="comma-separated subset "
                                        "(default: the verify nine)")
    p.add_argument("--algorithms", default=None,
                   help="comma-separated registered aligners "
                        "(default: the whole registry)")
    p.add_argument("--archs", default=None,
                   help="comma-separated architecture subset (default: all)")
    p.add_argument("--profile-source", choices=("measured", "static"),
                   default="measured", dest="profile_source",
                   help="profile fed to the aligners: the measured trace "
                        "(default) or the profile-free static prediction; "
                        "'static' renders the recovery study "
                        "(results/static_profile.md) instead of win "
                        "matrices")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable report (win matrices, "
                        "standings, per-cell scores)")
    g = p.add_argument_group("arena sharding")
    g.add_argument("--arena", action="store_true",
                   help="shard through the fault-tolerant fabric as one "
                        "unit per benchmark x algorithm")
    g.add_argument("--workers", type=int, default=2, metavar="N",
                   help="fabric workers with --arena (default 2)")
    g.add_argument("--retries", type=int, default=3, metavar="N",
                   help="max attempts per fabric unit (default 3)")
    g.add_argument("--queue", metavar="DIR",
                   help="durable fabric queue directory with --arena")
    common(p, window=True)
    p.set_defaults(func=cmd_tournament)

    p = sub.add_parser("quality", help="layout-quality internals per algorithm")
    p.add_argument("benchmark")
    p.add_argument("--arch", choices=("fallthrough", "btfnt", "likely", "pht", "btb"),
                   default="likely")
    common(p, window=True)
    p.set_defaults(func=cmd_quality)

    p = sub.add_parser("hotspots", help="per-procedure / per-branch cost attribution")
    p.add_argument("benchmark")
    p.add_argument("--arch", choices=("fallthrough", "btfnt", "likely", "pht", "btb"),
                   default="likely")
    p.add_argument("--top", type=int, default=15, help="branch sites to show")
    common(p, window=True)
    p.set_defaults(func=cmd_hotspots)

    p = sub.add_parser("verify", help="check every paper claim (reproduction certificate)")
    p.add_argument("--strict", action="store_true",
                   help="exit non-zero when any claim fails")
    common(p, window=True)
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser(
        "bench",
        help="time the replay engine vs the legacy execute engine and "
             "write BENCH_PR4.json (non-zero exit if replay is slower "
             "or results diverge)",
    )
    p.add_argument("--benchmarks", help="comma-separated subset")
    p.add_argument("--quick", action="store_true",
                   help="one benchmark, one repeat (CI smoke mode)")
    p.add_argument("--tournament", action="store_true",
                   help="time the full-registry tournament (shared trace vs "
                        "per-algorithm re-execution) instead of the 3-layout "
                        "pipeline")
    p.add_argument("--repeats", type=int, default=None, metavar="N",
                   help="timing repeats, best-of (default 3; 1 with --quick)")
    p.add_argument("--trace-cache", metavar="DIR",
                   help="persistent trace cache (default: a temp dir "
                        "warmed in-run)")
    p.add_argument("--json-output", default=None, metavar="PATH",
                   help="where to write the JSON report (default "
                        "BENCH_PR4.json; BENCH_PR9.json with --tournament)")
    common(p, window=True)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("dot", help="emit a procedure's CFG as Graphviz")
    p.add_argument("benchmark")
    p.add_argument("procedure")
    p.add_argument("--weights", action="store_true",
                   help="label edges with profiled execution percentages")
    common(p)
    p.set_defaults(func=cmd_dot)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except UsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except (RunnerError, ProfileFormatError, LayoutError, CFGError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_RUNTIME


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
