"""Command-line interface: ``python -m repro <command>``.

Gives the library's main workflows a shell entry point:

* ``list`` — the 24-benchmark suite and its categories;
* ``profile`` — trace a benchmark, write an edge profile (JSON);
* ``align`` — align a benchmark and report per-architecture relative CPI
  (optionally reusing a saved profile, the paper's two-pass workflow);
* ``table2`` / ``table3`` / ``table4`` / ``figure4`` — regenerate the
  paper's evaluation artifacts;
* ``dot`` — emit a procedure's control-flow graph in Graphviz format.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .analysis import (
    branch_hotspots,
    compare_layout_quality,
    layout_quality,
    compute_table2,
    experiment_records,
    figure4_records,
    records_to_csv,
    table2_records,
    procedure_hotspots,
    render_hotspots,
    render_claims,
    verify_claims,
    format_table,
    issue_width_sweep,
    mispredict_penalty_sweep,
    penalty_breakdown,
    render_breakdown,
    render_figure4,
    render_table2,
    render_table3,
    render_table4,
    run_figure4,
    run_suite_experiment,
)
from .cfg import procedure_to_dot
from .core import CostAligner, GreedyAligner, TryNAligner, make_model
from .isa import ProgramLayout, diff_layouts, link, link_identity, render_diff, save_layout
from .profiling import load_profile, profile_program, save_profile
from .sim.metrics import ALL_ARCHS, DYNAMIC_ARCHS, STATIC_ARCHS, simulate
from .workloads import SUITE, generate_benchmark


def _write(text: str, output: Optional[str]) -> None:
    if output:
        with open(output, "w") as handle:
            handle.write(text + "\n")
    else:
        print(text)


def _benchmark_list(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    names = [name.strip() for name in value.split(",") if name.strip()]
    unknown = [name for name in names if name not in SUITE]
    if unknown:
        raise SystemExit(f"unknown benchmarks: {', '.join(unknown)}")
    return names


def cmd_list(args: argparse.Namespace) -> int:
    width = max(len(name) for name in SUITE)
    for name, spec in SUITE.items():
        print(f"{name:<{width}}  {spec.category:<10}  {spec.description}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    program = generate_benchmark(args.benchmark, args.scale)
    profile = profile_program(program, seed=args.seed)
    save_profile(profile, args.output)
    total = sum(profile.total_weight(name) for name in profile.procedures())
    print(f"wrote {args.output}: {len(profile.procedures())} procedures, "
          f"{total:,} edge traversals")
    return 0


def _make_aligner(algorithm: str, arch: str, window: int):
    if algorithm == "greedy":
        return GreedyAligner()
    if algorithm == "cost":
        return CostAligner(make_model(arch))
    if algorithm == "tryn":
        return TryNAligner.for_architecture(arch, window=window)
    raise SystemExit(f"unknown algorithm {algorithm!r}")


def cmd_align(args: argparse.Namespace) -> int:
    program = generate_benchmark(args.benchmark, args.scale)
    if args.profile:
        profile = load_profile(args.profile)
    else:
        profile = profile_program(program, seed=args.seed)
    aligner = _make_aligner(args.algorithm, args.arch, args.window)
    layout = aligner.align(program, profile)
    if args.save_layout:
        save_layout(layout, args.save_layout)
        print(f"alignment map written to {args.save_layout}")
    if args.diff:
        print(render_diff(
            diff_layouts(ProgramLayout.identity(program), layout), profile
        ))
        print()

    inversions = jumps = removed = 0
    for name in program.order:
        proc_layout = layout[name]
        inversions += len(proc_layout.inverted_conditionals())
        jumps += len(proc_layout.inserted_jumps())
        removed += len(proc_layout.removed_branches())
    print(f"{args.algorithm} alignment ({args.arch} model): "
          f"{inversions} inverted conditionals, {jumps} inserted jumps, "
          f"{removed} removed branches")

    base = simulate(link_identity(program), profile, seed=args.seed)
    aligned = simulate(link(layout), profile, seed=args.seed)
    print(f"\n{'architecture':<18}{'orig CPI':>10}{'aligned':>10}{'gain %':>8}")
    for arch in ALL_ARCHS:
        before = base.relative_cpi(arch, base.instructions)
        after = aligned.relative_cpi(arch, base.instructions)
        print(f"{arch:<18}{before:>10.3f}{after:>10.3f}"
              f"{100 * (before - after) / before:>8.1f}")
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    rows = compute_table2(_benchmark_list(args.benchmarks), scale=args.scale,
                          seed=args.seed)
    if args.csv:
        _write(records_to_csv(table2_records(rows)).rstrip(), args.output)
    else:
        _write(render_table2(rows), args.output)
    return 0


def cmd_table3(args: argparse.Namespace) -> int:
    experiments = run_suite_experiment(
        _benchmark_list(args.benchmarks), scale=args.scale, seed=args.seed,
        window=args.window, archs=STATIC_ARCHS,
    )
    if args.csv:
        _write(records_to_csv(experiment_records(experiments)).rstrip(), args.output)
    else:
        _write(render_table3(experiments), args.output)
    return 0


def cmd_table4(args: argparse.Namespace) -> int:
    experiments = run_suite_experiment(
        _benchmark_list(args.benchmarks), scale=args.scale, seed=args.seed,
        window=args.window, archs=DYNAMIC_ARCHS,
    )
    if args.csv:
        _write(records_to_csv(experiment_records(experiments)).rstrip(), args.output)
    else:
        _write(render_table4(experiments), args.output)
    return 0


def cmd_figure4(args: argparse.Namespace) -> int:
    names = _benchmark_list(args.benchmarks)
    kwargs = {"scale": args.scale, "seed": args.seed, "window": args.window}
    rows = run_figure4(names, **kwargs) if names else run_figure4(**kwargs)
    if args.csv:
        _write(records_to_csv(figure4_records(rows)).rstrip(), args.output)
    else:
        _write(render_figure4(rows), args.output)
    return 0


def cmd_breakdown(args: argparse.Namespace) -> int:
    program = generate_benchmark(args.benchmark, args.scale)
    archs = tuple(a.strip() for a in args.archs.split(",")) if args.archs else ALL_ARCHS
    rows = penalty_breakdown(program, archs=archs, seed=args.seed)
    _write(render_breakdown(rows), args.output)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    program = generate_benchmark(args.benchmark, args.scale)
    if args.kind == "penalty":
        raw = args.points or "2,4,8,16"
        points = mispredict_penalty_sweep(
            program, arch=args.arch,
            penalties=[float(p) for p in raw.split(",")],
            seed=args.seed,
        )
        header = "Mispredict cycles"
    else:
        raw = args.points or "1,2,4,8"
        points = issue_width_sweep(
            program, widths=[int(p) for p in raw.split(",")], seed=args.seed
        )
        header = "Issue width"
    text = format_table(
        [header, "Original", "Aligned", "Gain %"],
        [[f"{p.parameter:g}", f"{p.original:,.3f}", f"{p.aligned:,.3f}",
          f"{p.gain_percent:.1f}"] for p in points],
    )
    _write(text, args.output)
    return 0


def cmd_quality(args: argparse.Namespace) -> int:
    program = generate_benchmark(args.benchmark, args.scale)
    profile = profile_program(program, seed=args.seed)
    qualities = {"orig": layout_quality(link_identity(program), profile)}
    for algorithm in ("greedy", "cost", "tryn"):
        aligner = _make_aligner(algorithm, args.arch, args.window)
        linked = link(aligner.align(program, profile))
        qualities[algorithm] = layout_quality(linked, profile)
    _write(compare_layout_quality(qualities), args.output)
    return 0


def cmd_hotspots(args: argparse.Namespace) -> int:
    program = generate_benchmark(args.benchmark, args.scale)
    from .profiling import profile_program as _pp
    profile = _pp(program, seed=args.seed)
    model = make_model(args.arch)
    aligner = TryNAligner.for_architecture(args.arch, window=args.window)
    procs = procedure_hotspots(program, model, aligner, profile, seed=args.seed)
    branches = branch_hotspots(program, model, aligner, profile, seed=args.seed,
                               top=args.top)
    _write(render_hotspots(procs, branches), args.output)
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    results = verify_claims(scale=args.scale, seed=args.seed, window=args.window)
    _write(render_claims(results), args.output)
    return 0 if all(r.passed for r in results) else 1


def cmd_dot(args: argparse.Namespace) -> int:
    program = generate_benchmark(args.benchmark, args.scale)
    if args.procedure not in program:
        raise SystemExit(
            f"unknown procedure {args.procedure!r}; "
            f"available: {', '.join(program.order)}"
        )
    weights = None
    if args.weights:
        profile = profile_program(program, seed=args.seed)
        weights = profile.proc_edges(args.procedure)
    text = procedure_to_dot(program.procedure(args.procedure), edge_weights=weights)
    _write(text, args.output)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Branch alignment reproduction (Calder & Grunwald, ASPLOS 1994)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, window=False):
        p.add_argument("--scale", type=float, default=0.25,
                       help="workload scale multiplier (default 0.25)")
        p.add_argument("--seed", type=int, default=0, help="behaviour seed")
        p.add_argument("-o", "--output", help="write result to a file")
        if window:
            p.add_argument("--window", type=int, default=15,
                           help="TryN window size (default 15)")

    sub.add_parser("list", help="list the benchmark suite").set_defaults(func=cmd_list)

    p = sub.add_parser("profile", help="trace a benchmark, save its edge profile")
    p.add_argument("benchmark")
    p.add_argument("output", help="profile JSON path")
    common(p)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("align", help="align a benchmark and compare CPI")
    p.add_argument("benchmark")
    p.add_argument("--algorithm", choices=("greedy", "cost", "tryn"), default="tryn")
    p.add_argument("--arch", choices=("fallthrough", "btfnt", "likely", "pht", "btb"),
                   default="btb", help="cost-model architecture")
    p.add_argument("--profile", help="reuse a saved profile instead of tracing")
    p.add_argument("--save-layout", help="write the alignment map (JSON) here")
    p.add_argument("--diff", action="store_true",
                   help="print the block-level transformation report")
    common(p, window=True)
    p.set_defaults(func=cmd_align)

    p = sub.add_parser("breakdown", help="misfetch/mispredict decomposition")
    p.add_argument("benchmark")
    p.add_argument("--archs", help="comma-separated architecture subset")
    common(p)
    p.set_defaults(func=cmd_breakdown)

    p = sub.add_parser("sweep", help="machine-sensitivity sweeps")
    p.add_argument("benchmark")
    p.add_argument("kind", choices=("penalty", "width"))
    p.add_argument("--points", default=None,
                   help="comma-separated sweep points")
    p.add_argument("--arch", default="likely",
                   help="architecture for the penalty sweep")
    common(p)
    p.set_defaults(func=cmd_sweep)

    for name, func, window in (
        ("table2", cmd_table2, False),
        ("table3", cmd_table3, True),
        ("table4", cmd_table4, True),
        ("figure4", cmd_figure4, True),
    ):
        p = sub.add_parser(name, help=f"regenerate the paper's {name}")
        p.add_argument("--benchmarks", help="comma-separated subset")
        p.add_argument("--csv", action="store_true",
                       help="emit machine-readable CSV instead of a table")
        common(p, window=window)
        p.set_defaults(func=func)

    p = sub.add_parser("quality", help="layout-quality internals per algorithm")
    p.add_argument("benchmark")
    p.add_argument("--arch", choices=("fallthrough", "btfnt", "likely", "pht", "btb"),
                   default="likely")
    common(p, window=True)
    p.set_defaults(func=cmd_quality)

    p = sub.add_parser("hotspots", help="per-procedure / per-branch cost attribution")
    p.add_argument("benchmark")
    p.add_argument("--arch", choices=("fallthrough", "btfnt", "likely", "pht", "btb"),
                   default="likely")
    p.add_argument("--top", type=int, default=15, help="branch sites to show")
    common(p, window=True)
    p.set_defaults(func=cmd_hotspots)

    p = sub.add_parser("verify", help="check every paper claim (reproduction certificate)")
    common(p, window=True)
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("dot", help="emit a procedure's CFG as Graphviz")
    p.add_argument("benchmark")
    p.add_argument("procedure")
    p.add_argument("--weights", action="store_true",
                   help="label edges with profiled execution percentages")
    common(p)
    p.set_defaults(func=cmd_dot)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
