"""Module entry point: ``python -m repro``."""

import sys

from .cli import main

try:
    code = main()
except BrokenPipeError:
    # Output piped into a pager/head that closed early — not an error.
    code = 0
    try:
        sys.stdout.close()
    except BrokenPipeError:
        pass
sys.exit(code)
