"""Figure 2: ALVINN's input_hidden single-block loop.

Regenerates the section-4 arithmetic: under the FALLTHROUGH cost model the
original self-loop costs five cycles per iteration (mispredicted taken
branch); inverting the conditional and appending an unconditional jump
costs three.
"""

import pytest

from repro.analysis import format_table
from repro.core import CostAligner, GreedyAligner, make_model
from repro.isa import link, link_identity
from repro.profiling import profile_program
from repro.sim.metrics import simulate
from repro.workloads import figure2_program


def test_figure2_self_loop(benchmark, emit, scale):
    trips = max(200, int(2000 * scale))

    def run():
        program = figure2_program(iters=1, trips=trips)
        profile = profile_program(program)
        model = make_model("fallthrough")
        original = model.layout_cost(link_identity(program), profile)
        cost_layout = CostAligner(model).align(program, profile)
        cost_aligned = model.layout_cost(link(cost_layout), profile)
        greedy_layout = GreedyAligner().align(program, profile)
        greedy_aligned = model.layout_cost(link(greedy_layout), profile)

        # Also measure the simulated FALLTHROUGH BEP before and after.
        base = simulate(link_identity(program), profile)
        aligned = simulate(link(cost_layout), profile)
        return {
            "original": original,
            "cost": cost_aligned,
            "greedy": greedy_aligned,
            "bep_before": base.arch["fallthrough"].bep,
            "bep_after": aligned.arch["fallthrough"].bep,
            "instr_before": base.instructions,
            "instr_after": aligned.instructions,
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "figure2_alvinn_loop",
        format_table(
            ["Layout", "Modelled cycles", "Simulated BEP"],
            [
                ["original", f"{out['original']:.0f}", str(out["bep_before"])],
                ["Cost-aligned", f"{out['cost']:.0f}", str(out["bep_after"])],
                ["Greedy", f"{out['greedy']:.0f}", "-"],
            ],
        ),
    )

    # 5 cycles/iteration -> 3 cycles/iteration.
    assert out["original"] / out["cost"] == pytest.approx(5.0 / 3.0, rel=0.05)
    # Greedy cannot restructure the self-loop (section 4).
    assert out["greedy"] == pytest.approx(out["original"], rel=0.01)
    # The simulated penalty drops accordingly: 5 penalty cycles per
    # iteration (mispredict + instruction) down to ~2 (misfetch + jump).
    assert out["bep_after"] < 0.55 * out["bep_before"]
