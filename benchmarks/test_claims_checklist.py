"""The reproduction certificate: every paper claim checked at full scale."""

from repro.analysis import render_claims, verify_claims


def test_paper_claims_checklist(benchmark, emit, scale, window):
    results = benchmark.pedantic(
        lambda: verify_claims(scale=scale, window=window), rounds=1, iterations=1
    )
    emit("claims_checklist", render_claims(results))
    failing = [r.claim_id for r in results if not r.passed]
    assert not failing, failing
