"""Table 4: relative CPI for the dynamic prediction architectures.

Regenerates the (direct-mapped PHT, correlation PHT, 64x2 BTB, 256x4 BTB)
x (Orig, Greedy, Try15) relative-CPI table over the full suite.
"""

from repro.analysis import (
    category_average,
    render_table4,
    run_suite_experiment,
)
from repro.sim.metrics import DYNAMIC_ARCHS
from repro.workloads import CATEGORIES

_ARCHS = DYNAMIC_ARCHS + ("btfnt",)  # btfnt included for the gap claim


def test_table4_dynamic_architectures(benchmark, emit, scale, window):
    experiments = benchmark.pedantic(
        lambda: run_suite_experiment(scale=scale, window=window, archs=_ARCHS),
        rounds=1,
        iterations=1,
    )
    emit("table4_dynamic", render_table4(experiments))

    def avg(aligner, arch):
        total = [category_average(experiments, cat, aligner, arch) for cat in CATEGORIES]
        return sum(total) / len(total)

    # Alignment offers some improvement to the PHTs.
    for arch in ("pht-direct", "pht-correlation"):
        assert avg("try15", arch) < avg("orig", arch), arch

    # The BTB architecture has the best overall (original) performance.
    for arch in ("pht-direct", "pht-correlation", "btfnt"):
        assert avg("orig", "btb-256x4") <= avg("orig", arch)

    # Little improvement for BTBs compared to the PHT gain.
    pht_gain = avg("orig", "pht-direct") - avg("try15", "pht-direct")
    btb_gain = avg("orig", "btb-256x4") - avg("try15", "btb-256x4")
    assert btb_gain < pht_gain

    # Section 6's headline: alignment narrows the correlation-PHT vs
    # BT/FNT gap (7% before alignment, 2% after, in the paper).
    gap_before = avg("orig", "btfnt") - avg("orig", "pht-correlation")
    gap_after = avg("try15", "btfnt") - avg("try15", "pht-correlation")
    assert gap_after < gap_before
