"""Table 2: measured attributes of the traced programs.

Regenerates the full 24-program measurement table: traced instructions,
break density, conditional-site quantiles, static site counts, taken rate
and the break-kind mix.
"""

from repro.analysis import (
    category_break_density,
    compute_table2,
    render_table2,
)
from repro.workloads import calibration_report, check_calibration


def test_table2_program_attributes(benchmark, emit, scale):
    rows = benchmark.pedantic(
        lambda: compute_table2(scale=scale), rounds=1, iterations=1
    )
    emit("table2_attributes", render_table2(rows))

    assert len(rows) == 24
    # The paper's central Table 2 contrast: FP programs break control flow
    # far less often than integer and C++ programs (6.5% vs 16%).
    fp = category_break_density(rows, "SPECfp92")
    intd = category_break_density(rows, "SPECint92")
    other = category_break_density(rows, "Other")
    assert intd > 1.5 * fp
    assert other > 1.5 * fp
    # Original layouts are taken-hot, the headroom alignment exploits.
    avg_taken = sum(r.percent_taken for r in rows) / len(rows)
    assert avg_taken > 55.0
    # gcc has the most conditional branch sites, as in the paper.
    by_sites = max(rows, key=lambda r: r.static_sites)
    assert by_sites.name == "gcc"
    # Every benchmark sits inside its calibrated Table 2 band.
    issues = check_calibration(rows)
    assert not issues, calibration_report(rows)
