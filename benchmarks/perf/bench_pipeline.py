#!/usr/bin/env python
"""Standalone pipeline benchmark: replay engine vs legacy execute.

Equivalent to ``python -m repro bench``; kept as a plain script so it
can be pointed at a source checkout without installing the package:

    PYTHONPATH=src python benchmarks/perf/bench_pipeline.py [--quick]

Writes ``BENCH_PR4.json`` to the current directory (override with
``--output``) and exits non-zero if the replay engine is slower than
the legacy engine or produces different results.
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="one benchmark, one repeat (CI smoke mode)")
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--window", type=int, default=15)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--trace-cache", metavar="DIR", default=None,
                        help="reuse a persistent trace cache directory")
    parser.add_argument("-o", "--output", default="BENCH_PR4.json")
    args = parser.parse_args(argv)

    from repro.analysis.bench import (
        BENCH_BENCHMARKS,
        QUICK_BENCHMARKS,
        bench_pipeline,
        render_bench,
        write_bench_json,
    )

    benchmarks = QUICK_BENCHMARKS if args.quick else BENCH_BENCHMARKS
    repeats = args.repeats if args.repeats is not None else (1 if args.quick else 3)
    report = bench_pipeline(
        benchmarks=benchmarks,
        scale=args.scale,
        seed=args.seed,
        window=args.window,
        repeats=repeats,
        trace_cache=args.trace_cache,
    )
    path = write_bench_json(report, args.output)
    print(render_bench(report))
    print(f"wrote {path}")
    return 0 if report["replay_not_slower"] else 1


if __name__ == "__main__":
    sys.exit(main())
