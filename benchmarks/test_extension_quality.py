"""Extension bench: layout-quality internals across the algorithms.

Regenerates the quantities the paper's prose tracks — fall-through rate
(Yeh et al's 62%-taken problem, Hwu & Chang's 58% fall-through result),
backward-taken share, dynamic jump overhead and chain shape — for the
original layout and all four algorithms, on one branchy benchmark.
"""

from repro.analysis import compare_layout_quality, layout_quality
from repro.core import (
    CostAligner,
    GreedyAligner,
    TraceAligner,
    TryNAligner,
    make_model,
)
from repro.isa import link, link_identity
from repro.profiling import profile_program
from repro.workloads import generate_benchmark


def test_extension_layout_quality(benchmark, emit, scale, window):
    def run():
        program = generate_benchmark("espresso", 0.5 * scale)
        profile = profile_program(program)
        model = make_model("likely")
        layouts = {
            "orig": link_identity(program),
            "trace": link(TraceAligner().align(program, profile)),
            "greedy": link(GreedyAligner().align(program, profile)),
            "cost": link(CostAligner(model).align(program, profile)),
            "try15": link(TryNAligner(model, window=window).align(program, profile)),
        }
        return {name: layout_quality(linked, profile)
                for name, linked in layouts.items()}

    qualities = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("extension_layout_quality", compare_layout_quality(qualities))

    # Every aligner raises the fall-through rate over the original.
    base = qualities["orig"].percent_fallthrough
    for name in ("trace", "greedy", "cost", "try15"):
        assert qualities[name].percent_fallthrough > base, name
    # Chain-merging aligners reach the ballpark of Hwu & Chang's 58%
    # fall-through result on taken-hot integer code.
    assert qualities["greedy"].percent_fallthrough > 55.0
    # Try15 under LIKELY instead maximises *predicted* branches: most of
    # the taken executions it keeps point backward.
    assert qualities["try15"].percent_taken_backward > \
        qualities["orig"].percent_taken_backward
