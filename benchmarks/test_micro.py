"""Micro-benchmarks: throughput of the substrate components.

Unlike the table/figure regenerators, these use pytest-benchmark's normal
multi-round timing to track the performance of the alignment algorithms,
the executor and the predictor simulators themselves.
"""

import pytest

from repro.core import GreedyAligner, TryNAligner, make_model
from repro.isa import link, link_identity
from repro.profiling import profile_program
from repro.sim.executor import execute
from repro.sim.metrics import default_architectures, simulate
from repro.sim.predictors import BTBSim, CorrelationPHT, DirectMappedPHT
from repro.sim import trace as tr
from repro.workloads import generate_benchmark


@pytest.fixture(scope="module")
def gcc_program():
    return generate_benchmark("gcc", 0.25)


@pytest.fixture(scope="module")
def gcc_profile(gcc_program):
    return profile_program(gcc_program)


def test_bench_profiling_pass(benchmark, gcc_program):
    benchmark(lambda: profile_program(gcc_program))


def test_bench_greedy_alignment(benchmark, gcc_program, gcc_profile):
    benchmark(lambda: GreedyAligner().align(gcc_program, gcc_profile))


def test_bench_try15_alignment(benchmark, gcc_program, gcc_profile):
    aligner = TryNAligner(make_model("likely"), window=15)
    benchmark(lambda: aligner.align(gcc_program, gcc_profile))


def test_bench_executor_throughput(benchmark, gcc_program):
    linked = link_identity(gcc_program)
    result = benchmark(lambda: execute(linked))
    assert result.instructions > 0


def test_bench_all_architectures_simulation(benchmark, gcc_program, gcc_profile):
    linked = link_identity(gcc_program)
    benchmark(lambda: simulate(linked, gcc_profile))


def _event_block():
    events = []
    for i in range(2000):
        site = 0x120000000 + (i % 97) * 12
        events.append((tr.COND, site, site + 64, (i % 3) != 0))
    return events


@pytest.mark.parametrize(
    "make_sim",
    [lambda: DirectMappedPHT(), lambda: CorrelationPHT(), lambda: BTBSim(256, 4)],
    ids=["pht-direct", "pht-correlation", "btb-256x4"],
)
def test_bench_predictor_event_rate(benchmark, make_sim):
    events = _event_block()

    def run():
        sim = make_sim()
        on_event = sim.on_event
        for event in events:
            on_event(event)
        return sim.bep

    assert benchmark(run) >= 0
