"""Table 1: the branch cost model, in cycles.

Regenerates the paper's cost table from the implementation's constants and
verifies the per-architecture expected-cost functions they imply.
"""

from repro.analysis import format_table
from repro.core import DEFAULT_COSTS, make_model


def test_table1_cost_model(benchmark, emit):
    def build():
        rows = [
            ["Unconditional branch", f"{DEFAULT_COSTS.unconditional:.0f}",
             "instruction + misfetch"],
            ["Correctly predicted fall-through", f"{DEFAULT_COSTS.correct_fallthrough:.0f}",
             "instruction"],
            ["Correctly predicted taken", f"{DEFAULT_COSTS.correct_taken:.0f}",
             "instruction + misfetch"],
            ["Mispredicted", f"{DEFAULT_COSTS.mispredicted:.0f}",
             "instruction + mispredict"],
        ]
        return format_table(["Branch outcome", "Cycles", "Breakdown"], rows)

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("table1_cost_model", text)

    assert DEFAULT_COSTS.unconditional == 2
    assert DEFAULT_COSTS.correct_fallthrough == 1
    assert DEFAULT_COSTS.correct_taken == 2
    assert DEFAULT_COSTS.mispredicted == 5
    # The dynamic models weaken the penalties by their hit rates.
    assert make_model("pht").cond_cost(100, 0, False) < 100 * 5
    assert make_model("btb").uncond_cost(100) < make_model("pht").uncond_cost(100)
