"""Table 3: relative CPI for the static prediction architectures.

Regenerates the (FALLTHROUGH, BT/FNT, LIKELY) x (Orig, Greedy, Try15)
relative-CPI table plus the fall-through percentages of executed
conditional branches, over the full 24-program suite.
"""

from repro.analysis import (
    category_average,
    render_table3,
    run_suite_experiment,
)
from repro.sim.metrics import STATIC_ARCHS
from repro.workloads import CATEGORIES


def test_table3_static_architectures(benchmark, emit, scale, window):
    experiments = benchmark.pedantic(
        lambda: run_suite_experiment(scale=scale, window=window, archs=STATIC_ARCHS),
        rounds=1,
        iterations=1,
    )
    emit("table3_static", render_table3(experiments))

    def avg(aligner, arch):
        total = [category_average(experiments, cat, aligner, arch) for cat in CATEGORIES]
        return sum(total) / len(total)

    # Try15 <= Greedy <= Orig on average, for every static architecture.
    for arch in STATIC_ARCHS:
        assert avg("try15", arch) <= avg("greedy", arch) + 0.01, arch
        assert avg("try15", arch) < avg("orig", arch), arch

    # FALLTHROUGH has the most headroom, LIKELY the least.
    gains = {
        arch: avg("orig", arch) - avg("try15", arch) for arch in STATIC_ARCHS
    }
    assert gains["fallthrough"] > gains["btfnt"] > 0
    assert gains["btfnt"] >= gains["likely"] > 0

    # Aligned FALLTHROUGH and BT/FNT are nearly identical (section 6).
    assert abs(avg("try15", "fallthrough") - avg("try15", "btfnt")) < 0.05

    # SPECint92/Other benefit more than SPECfp92 (section 6).
    fp_gain = category_average(experiments, "SPECfp92", "orig", "likely") - \
        category_average(experiments, "SPECfp92", "try15", "likely")
    int_gain = category_average(experiments, "SPECint92", "orig", "likely") - \
        category_average(experiments, "SPECint92", "try15", "likely")
    assert int_gain > fp_gain

    # Try15 pushes some program above 95% fall-through conditionals under
    # the FALLTHROUGH model (the paper reports up to 99%).
    best_ft = max(
        e.cell("try15", "fallthrough").percent_fallthrough for e in experiments
    )
    assert best_ft > 95.0
