"""Figure 1: the ESPRESSO elim_lowering transformation.

Regenerates the worked example: the routine's hot loop edges (25->31,
31->25, 27->29) are taken branches in the original layout, penalising
every static architecture; branch alignment makes 31->25 a fall-through
and places 29 before 27, improving all three.
"""

from repro.analysis import format_table
from repro.core import TryNAligner, make_model
from repro.isa import link, link_identity
from repro.profiling import profile_program
from repro.workloads import figure1_program


def test_figure1_elim_lowering(benchmark, emit, scale):
    iters = max(200, int(2000 * scale))

    def run():
        program = figure1_program(iters=iters)
        profile = profile_program(program)
        original = link_identity(program)
        rows = []
        layouts = {}
        for arch in ("fallthrough", "btfnt", "likely"):
            model = make_model(arch)
            aligner = TryNAligner.for_architecture(arch)
            layout = aligner.align(program, profile)
            layouts[arch] = layout
            rows.append([
                arch,
                f"{model.layout_cost(original, profile):.0f}",
                f"{model.layout_cost(link(layout), profile):.0f}",
            ])
        return program, profile, layouts, rows

    program, profile, layouts, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "figure1_espresso",
        format_table(["Architecture", "Original cycles", "Aligned cycles"], rows),
    )

    # Every static architecture's modelled cost improves.
    for arch, before, after in rows:
        assert float(after) < float(before), arch

    # The aligned layout makes node 25 the fall-through of node 31.
    proc = program.procedure("elim_lowering")
    ids = {b.label: b.bid for b in proc}
    order = [p.bid for p in layouts["likely"]["elim_lowering"].placements]
    assert order.index(ids["n25"]) == order.index(ids["n31"]) + 1
