"""Extension benches: penalty decomposition, I-cache locality, local PHT.

These go beyond the paper's tables to the *reasons* its prose gives:
where the cycles come from per architecture, the instruction-cache side
effect of chaining, and how a per-address two-level predictor (the other
Yeh & Patt family) responds to alignment.
"""

from repro.analysis import format_table, penalty_breakdown, render_breakdown
from repro.core import GreedyAligner, TryNAligner, make_model
from repro.isa import link, link_identity
from repro.profiling import profile_program
from repro.sim import ICacheConfig, InstructionCache
from repro.sim.executor import execute
from repro.sim.metrics import simulate
from repro.sim.predictors import CorrelationPHT, DirectMappedPHT, LocalHistoryPHT, TournamentPHT
from repro.workloads import generate_benchmark


def test_extension_penalty_breakdown(benchmark, emit, scale):
    def run():
        program = generate_benchmark("eqntott", 0.3 * scale)
        return penalty_breakdown(
            program, archs=("fallthrough", "btfnt", "likely", "pht-direct", "btb-256x4")
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("extension_penalty_breakdown", render_breakdown(rows))

    def cell(layout, arch):
        return next(r for r in rows if r.layout == layout and r.arch == arch)

    # FALLTHROUGH's gain is mispredict-driven; LIKELY's is misfetch-driven.
    assert cell("try15", "fallthrough").mispredict_cycles < \
        cell("orig", "fallthrough").mispredict_cycles
    assert cell("try15", "likely").misfetch_cycles < \
        cell("orig", "likely").misfetch_cycles


def test_extension_icache_locality(benchmark, emit, scale):
    """Alignment's instruction-cache side effect across cache sizes."""

    def run():
        program = generate_benchmark("gcc", 0.3 * scale)
        profile = profile_program(program)
        layouts = {
            "orig": link_identity(program),
            "greedy": link(GreedyAligner().align(program, profile)),
            "try15": link(TryNAligner.for_architecture("btb").align(program, profile)),
        }
        rows = []
        for size_kb in (1, 2, 4, 8):
            row = [f"{size_kb} KB"]
            for name, linked in layouts.items():
                cache = InstructionCache(ICacheConfig(size_bytes=size_kb * 1024))
                execute(linked, block_listeners=[cache])
                row.append(f"{100 * cache.miss_rate:.2f}%")
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "extension_icache_locality",
        format_table(["I-cache", "orig", "greedy", "try15"], rows),
    )
    # Alignment must not wreck locality on any modelled size.
    for row in rows:
        orig = float(row[1].rstrip("%"))
        for cell in row[2:]:
            assert float(cell.rstrip("%")) <= orig * 1.5 + 0.5, row


def test_extension_local_history_pht(benchmark, emit, scale):
    """The PAs-style predictor beside the paper's two PHTs."""

    def run():
        rows = []
        for name in ("compress", "sc", "swm256"):
            program = generate_benchmark(name, 0.3 * scale)
            profile = profile_program(program)
            linked = link_identity(program)
            sims = [DirectMappedPHT(), CorrelationPHT(), LocalHistoryPHT(),
                    TournamentPHT()]
            report = simulate(linked, profile, archs=sims)
            row = [name]
            for sim in sims:
                result = report.arch[sim.name]
                row.append(f"{100 * result.cond_accuracy:.2f}%")
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "extension_local_pht",
        format_table(
            ["Program", "pht-direct acc", "pht-correlation acc", "pht-local acc",
             "pht-tournament acc"],
            rows,
        ),
    )
    # All three predictors stay in a sane accuracy band.
    for row in rows:
        for cell in row[1:]:
            assert 50.0 < float(cell.rstrip("%")) <= 100.0
