"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures, prints
it to the terminal (bypassing capture) and writes it under ``results/``.
The workload scale is controlled with the ``REPRO_SCALE`` environment
variable (default 1.0 — the full suite takes well under a minute); the
Try15 window with ``REPRO_WINDOW`` (default 15, the paper's value).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "1.0"))


@pytest.fixture(scope="session")
def window() -> int:
    return int(os.environ.get("REPRO_WINDOW", "15"))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir, capsys):
    """Print a rendered table to the real terminal and save it."""

    def _emit(name: str, text: str) -> None:
        with capsys.disabled():
            print(f"\n=== {name} ===")
            print(text)
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _emit
