"""Figure 4: total execution time on the Alpha AXP 21064 model.

Regenerates the hardware experiment for the SPEC92 C programs: relative
execution time of the original binary, the Pettis & Hansen (Greedy)
alignment and Try15 (BTB cost model), on the dual-issue 21064 front-end
timing model.
"""

from repro.analysis import render_figure4, run_figure4


def test_figure4_alpha_execution_time(benchmark, emit, scale, window):
    rows = benchmark.pedantic(
        lambda: run_figure4(scale=scale, window=window), rounds=1, iterations=1
    )
    emit("figure4_alpha", render_figure4(rows))

    by_name = {r.name: r for r in rows}

    # Alignment never hurts materially, and always executes.
    for row in rows:
        assert row.try15_relative <= 1.02, row.name
        assert row.greedy_relative <= 1.05, row.name

    # The FP programs see no benefit (paper: "ALVINN and EAR do not see
    # any benefit from the branch alignment").
    assert by_name["alvinn"].try15_improvement_percent < 2.0
    assert by_name["ear"].try15_improvement_percent < 3.5

    # The branchy C programs benefit the most (paper: GCC, EQNTOTT, SC).
    for name in ("gcc", "eqntott", "sc"):
        assert by_name[name].try15_improvement_percent > \
            by_name["alvinn"].try15_improvement_percent, name

    # Gains land in the paper's "up to 16%" band.
    best = max(r.try15_improvement_percent for r in rows)
    assert 2.0 < best <= 16.0

    # Try15 at least matches the Pettis & Hansen alignment on average.
    avg_tryn = sum(r.try15_relative for r in rows) / len(rows)
    avg_greedy = sum(r.greedy_relative for r in rows) / len(rows)
    assert avg_tryn <= avg_greedy + 0.002
