"""Figure 3: the loop Try15 rotates and Greedy cannot.

Regenerates the paper's exact arithmetic: with edge weights 9000 / 8999 /
8999 / 1 the original layout costs 36,002 cycles under the LIKELY and
BT/FNT cost models; the rotated layout (chain C, A, B with the
unconditional branch removed) costs ~27,000, the paper's 33% improvement.
"""

import pytest

from repro.analysis import format_table
from repro.core import GreedyAligner, TryNAligner, make_model
from repro.isa import link, link_identity
from repro.profiling import profile_program
from repro.workloads import FIGURE3_ORIGINAL_COST, figure3_program


def test_figure3_loop_rotation(benchmark, emit):
    def run():
        program = figure3_program()  # the paper's exact weights
        profile = profile_program(program)
        out = {}
        for arch in ("likely", "btfnt"):
            model = make_model(arch)
            proc = program.procedure("fig3")
            original = model.procedure_cost(link_identity(program), proc, profile)
            tryn_layout = TryNAligner.for_architecture(arch).align(program, profile)
            greedy_layout = GreedyAligner().align(program, profile)
            out[arch] = (
                original,
                model.procedure_cost(link(tryn_layout), proc, profile),
                model.procedure_cost(link(greedy_layout), proc, profile),
            )
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [arch, f"{orig:.0f}", f"{tryn:.0f}", f"{greedy:.0f}"]
        for arch, (orig, tryn, greedy) in out.items()
    ]
    emit(
        "figure3_tryn_loop",
        format_table(["Model", "Original", "Try15", "Greedy"], rows)
        + "\n(paper: original 36,002 cycles; transformed 27,004)",
    )

    for arch, (orig, tryn, greedy) in out.items():
        # The paper's original cost, exactly.
        assert orig == FIGURE3_ORIGINAL_COST, arch
        # Our whole-procedure accounting adds one entry jump: 27,005
        # against the paper's 27,004 fragment count.
        assert tryn <= 27005.0, arch
        assert orig / tryn == pytest.approx(4.0 / 3.0, rel=0.01), arch
        # Greedy leaves money on the table here.
        assert tryn < greedy, arch
