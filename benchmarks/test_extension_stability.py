"""Extension bench: seed-robustness and cross-input generalisation.

Validates the paper's single-input methodology on this reproduction: the
alignment gain dwarfs across-seed noise, and an alignment trained on one
input carries to unseen inputs.
"""

from repro.analysis import (
    cross_input_generalisation,
    format_table,
    seed_stability,
)


def test_extension_seed_stability(benchmark, emit, scale):
    def run():
        out = {}
        for name in ("eqntott", "gcc"):
            out[name] = seed_stability(name, arch="likely", seeds=(0, 1, 2, 3),
                                       scale=0.15 * scale)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, cells in results.items():
        rows.append([
            name,
            f"{cells['orig'].mean:.3f} ± {cells['orig'].stdev:.4f}",
            f"{cells['aligned'].mean:.3f} ± {cells['aligned'].stdev:.4f}",
        ])
    emit("extension_seed_stability",
         format_table(["Program", "orig CPI (4 seeds)", "try15 CPI (4 seeds)"], rows))

    for name, cells in results.items():
        gain = cells["orig"].mean - cells["aligned"].mean
        assert gain > 2 * max(cells["orig"].stdev, cells["aligned"].stdev), name


def test_extension_cross_input(benchmark, emit, scale):
    def run():
        out = {}
        for name in ("compress", "espresso"):
            out[name] = cross_input_generalisation(
                name, arch="likely", train_seed=0, test_seeds=(1, 2, 3),
                scale=0.15 * scale,
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, cells in results.items():
        rows.append([
            name,
            f"{cells['orig'].mean:.3f}",
            f"{cells['self'].mean:.3f}",
            f"{cells['cross'].mean:.3f}",
        ])
    emit("extension_cross_input",
         format_table(["Program", "orig", "self-input", "cross-input"], rows))

    for name, cells in results.items():
        assert cells["cross"].mean < cells["orig"].mean, name
