"""Extension benches: sensitivity of alignment's benefit to the machine.

The paper's forward-looking claims, made quantitative:
"As wide issue architectures become more popular, branch alignment
algorithms will have a larger impact on the performance of programs."
"""

from repro.analysis import (
    format_table,
    issue_width_sweep,
    mispredict_penalty_sweep,
)
from repro.workloads import generate_benchmark


def test_extension_mispredict_penalty_sweep(benchmark, emit, scale):
    def run():
        program = generate_benchmark("eqntott", 0.3 * scale)
        return mispredict_penalty_sweep(
            program, arch="fallthrough", penalties=(2, 4, 8, 16, 32)
        )

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "extension_penalty_sweep",
        format_table(
            ["Mispredict cycles", "Orig rel CPI", "Try15 rel CPI", "Gain %"],
            [[f"{p.parameter:.0f}", f"{p.original:.3f}", f"{p.aligned:.3f}",
              f"{p.gain_percent:.1f}"] for p in points],
        ),
    )
    gains = [p.gain_percent for p in points]
    assert gains == sorted(gains)
    assert gains[-1] > 2 * gains[0]


def test_extension_issue_width_sweep(benchmark, emit, scale):
    def run():
        program = generate_benchmark("gcc", 0.3 * scale)
        return issue_width_sweep(program, widths=(1, 2, 4, 8))

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "extension_issue_width_sweep",
        format_table(
            ["Issue width", "Orig cycles", "Try15 cycles", "Gain %"],
            [[f"{p.parameter:.0f}", f"{p.original:,.0f}", f"{p.aligned:,.0f}",
              f"{p.gain_percent:.1f}"] for p in points],
        ),
    )
    # Alignment helps at every width and more at 4-wide than scalar.
    assert all(p.aligned < p.original for p in points)
    assert points[2].gain_percent > points[0].gain_percent
