"""Extension bench: self-loop unrolling (the paper's section-3 suggestion).

"If we unrolled that loop, duplicating the 11-instruction basic block, we
could reduce the misfetch penalty for all architectures and improve the
branch prediction for the FALLTHROUGH architecture."  This bench measures
the ALVINN Figure 2 loop and the full alvinn workload with duplication
factors 1 (off), 2 and 4, combined with Cost alignment.
"""

from repro.analysis import format_table
from repro.core import CostAligner, make_model
from repro.isa import link, link_identity
from repro.profiling import profile_program
from repro.sim.metrics import simulate
from repro.transforms import unroll_program_self_loops
from repro.workloads import figure2_program, generate_benchmark


def test_extension_unroll_alvinn(benchmark, emit, scale):
    def run():
        rows = []
        for factor in (1, 2, 4):
            program = generate_benchmark("alvinn", 0.3 * scale)
            if factor > 1:
                profile0 = profile_program(program)
                program = unroll_program_self_loops(program, factor, profile0,
                                                    min_weight=100)
            profile = profile_program(program)
            base = simulate(link_identity(program), profile)
            model = make_model("fallthrough")
            layout = CostAligner(model).align(program, profile)
            aligned = simulate(link(layout), profile)
            rows.append([
                f"x{factor}",
                f"{base.relative_cpi('fallthrough', base.instructions):.3f}",
                f"{aligned.relative_cpi('fallthrough', base.instructions):.3f}",
                f"{aligned.relative_cpi('btfnt', base.instructions):.3f}"
                if "btfnt" in aligned.arch else "-",
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "extension_unroll_alvinn",
        format_table(
            ["Unroll", "FALLTHROUGH orig", "FALLTHROUGH aligned", "BT/FNT aligned"],
            rows,
        ),
    )
    aligned_by_factor = {row[0]: float(row[2]) for row in rows}
    # Duplication + alignment beats alignment alone, and more duplication
    # helps more (the misfetch disappears from k-1 of k iterations).
    assert aligned_by_factor["x2"] < aligned_by_factor["x1"]
    assert aligned_by_factor["x4"] < aligned_by_factor["x2"]
