"""Ablation benches for the design choices the paper (and DESIGN.md) call out.

* Try15 window size — the paper: "Considering 10 nodes at a time gave
  slightly worse results than Try15 for a few programs, but ... still
  resulted in better performance than the Greedy algorithm."
* Chain ordering — highest-executed-first vs the Pettis–Hansen BT/FNT
  precedence order (section 6.1: weight ordering "performed slightly
  better").
* The position-exact sense refinement pass (this reproduction's
  implementation of "it is not known where the taken branch will be
  located until the chains are formed and laid out").
* Cost vs Try15 — the joint window search against purely local decisions.
"""

import pytest

from repro.analysis import format_table
from repro.core import CostAligner, GreedyAligner, TraceAligner, TryNAligner, make_model
from repro.isa import link, link_identity
from repro.profiling import profile_program
from repro.workloads import generate_benchmark

PROGRAMS = ("eqntott", "espresso", "gcc", "tex")
SCALE = 0.25


def _suite():
    out = []
    for name in PROGRAMS:
        program = generate_benchmark(name, SCALE)
        out.append((name, program, profile_program(program)))
    return out


def _total_cost(model, aligner, suite):
    total = 0.0
    for _name, program, profile in suite:
        total += model.layout_cost(link(aligner.align(program, profile)), profile)
    return total


def test_ablation_window_size(benchmark, emit):
    """Greedy < Try5 <= Try10 <= Try15 in modelled quality (roughly)."""
    model = make_model("likely")

    def run():
        suite = _suite()
        costs = {"greedy": _total_cost(model, GreedyAligner(), suite)}
        for window in (1, 5, 10, 15, 30):
            aligner = TryNAligner(model, window=window)
            costs[f"try{window}"] = _total_cost(model, aligner, suite)
        return costs

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_window_size",
        format_table(
            ["Aligner", "Modelled cycles (4 programs)"],
            [[k, f"{v:.0f}"] for k, v in costs.items()],
        ),
    )
    assert costs["try15"] <= costs["try1"] * 1.0001
    assert costs["try15"] < costs["greedy"]
    # Windows near the paper's choice are already saturated.
    assert costs["try30"] <= costs["try10"] * 1.001


def test_ablation_chain_ordering(benchmark, emit):
    """Weight ordering vs BT/FNT precedence ordering for Greedy."""
    model = make_model("btfnt")

    def run():
        suite = _suite()
        return {
            "greedy/weight": _total_cost(model, GreedyAligner("weight"), suite),
            "greedy/btfnt": _total_cost(model, GreedyAligner("btfnt"), suite),
        }

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_chain_ordering",
        format_table(
            ["Configuration", "BT/FNT modelled cycles"],
            [[k, f"{v:.0f}"] for k, v in costs.items()],
        ),
    )
    # Both orderings must produce working layouts; the paper found the
    # weight ordering slightly better overall, which we reproduce.
    assert costs["greedy/weight"] <= costs["greedy/btfnt"] * 1.05


def test_ablation_sense_refinement(benchmark, emit):
    """The refinement pass never hurts and usually helps BT/FNT."""
    model = make_model("btfnt")

    class _NoRefine(TryNAligner):
        """Try15 with the sense-refinement pass disabled."""

        def align_procedure(self, proc, profile):
            chains, jump_prefs = self.build_chains(proc, profile)
            chains.check()
            from repro.core.layout_order import order_chains
            from repro.isa import ProcedureLayout

            order = order_chains(chains, profile, self.chain_order)
            return ProcedureLayout.from_order(proc, order, jump_preference=jump_prefs)

    def run():
        suite = _suite()
        refined = TryNAligner(make_model("likely"), refine_model=make_model("btfnt"))
        likely_refined = TryNAligner(make_model("likely"))
        no_refine = _NoRefine(make_model("likely"))
        return {
            "search+btfnt refine": _total_cost(model, refined, suite),
            "search only": _total_cost(model, no_refine, suite),
            "search+likely refine": _total_cost(model, likely_refined, suite),
        }

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_sense_refinement",
        format_table(
            ["Configuration", "BT/FNT modelled cycles"],
            [[k, f"{v:.0f}"] for k, v in costs.items()],
        ),
    )
    assert costs["search+btfnt refine"] <= costs["search only"] + 1e-6


def test_ablation_cost_vs_tryn(benchmark, emit):
    """The window search vs the purely local Cost heuristic."""
    def run():
        suite = _suite()
        rows = []
        for arch in ("fallthrough", "likely", "pht"):
            model = make_model(arch)
            rows.append([
                arch,
                f"{_total_cost(model, CostAligner(model), suite):.0f}",
                f"{_total_cost(model, TryNAligner(model), suite):.0f}",
                f"{_total_cost(model, GreedyAligner(), suite):.0f}",
                f"{_total_cost(model, TraceAligner(), suite):.0f}",
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_cost_vs_tryn",
        format_table(["Model", "Cost", "Try15", "Greedy", "Trace"], rows),
    )
    for arch, cost_c, cost_t, cost_g, _cost_trace in rows:
        # Try15 is the best of the three under its own model.
        assert float(cost_t) <= float(cost_c) * 1.001, arch
        assert float(cost_t) <= float(cost_g) * 1.001, arch
