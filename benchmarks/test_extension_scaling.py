"""Extension bench: alignment at large static scale (synthetic programs).

The suite's synthetic benchmarks are laptop-sized; this bench generates a
program with hundreds of hot branch sites — enough to pressure the small
BTB the way gcc pressures it in the paper — and checks that (a) the BTB
size finally matters, (b) the small BTB benefits more from alignment, and
(c) TryN's windowed search stays fast at this scale.
"""

import time

from repro.analysis import format_table, make_arch_sims
from repro.core import TryNAligner, make_model
from repro.isa import link, link_identity
from repro.profiling import profile_program
from repro.sim.metrics import simulate
from repro.workloads import SyntheticSpec, generate_synthetic


def test_extension_btb_pressure_at_scale(benchmark, emit):
    spec = SyntheticSpec(procedures=20, constructs_per_procedure=25,
                         driver_iterations=4)

    def run():
        program = generate_synthetic(spec, seed=1)
        profile = profile_program(program)
        start = time.perf_counter()
        layout = TryNAligner.for_architecture("btb").align(program, profile)
        align_seconds = time.perf_counter() - start
        archs = ("btb-64x2", "btb-256x4")
        original = link_identity(program)
        base = simulate(original, profile,
                        archs=make_arch_sims(archs, original, profile))
        aligned_linked = link(layout)
        aligned = simulate(aligned_linked, profile,
                           archs=make_arch_sims(archs, aligned_linked, profile))
        return program, base, aligned, align_seconds

    program, base, aligned, align_seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    instr = base.instructions
    rows = []
    for arch in ("btb-64x2", "btb-256x4"):
        rows.append([
            arch,
            f"{base.relative_cpi(arch, instr):.3f}",
            f"{aligned.relative_cpi(arch, instr):.3f}",
        ])
    rows.append(["sites", str(program.static_conditional_sites()), ""])
    rows.append(["align time", f"{align_seconds:.2f}s", ""])
    emit("extension_btb_pressure", format_table(["", "orig", "try15"], rows))

    small_before = base.relative_cpi("btb-64x2", instr)
    large_before = base.relative_cpi("btb-256x4", instr)
    small_after = aligned.relative_cpi("btb-64x2", instr)
    large_after = aligned.relative_cpi("btb-256x4", instr)
    # With ~800 sites, the 64-entry BTB visibly trails the 256-entry one.
    assert small_before > large_before + 0.003
    # "The small BTB architecture can benefit more from branch alignment
    # than the larger BTB" — fewer taken branches need fewer entries.
    assert (small_before - small_after) > (large_before - large_after)
    # The windowed search stays practical at this scale.
    assert align_seconds < 30.0
